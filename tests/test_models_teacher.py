"""Tests for the teacher models (oracle and neural)."""

import numpy as np
import pytest

from repro.models.teacher import OracleTeacher, TeacherNet
from repro.models.student import StudentNet


class TestOracleTeacher:
    def test_exact_oracle_returns_label(self, rng):
        teacher = OracleTeacher()
        label = rng.integers(0, 9, size=(8, 8))
        out = teacher.infer(np.zeros((3, 8, 8)), label)
        np.testing.assert_array_equal(out, label)

    def test_returns_copy_not_view(self, rng):
        teacher = OracleTeacher()
        label = rng.integers(0, 9, size=(4, 4))
        out = teacher.infer(np.zeros((3, 4, 4)), label)
        out[0, 0] = 99
        assert label[0, 0] != 99

    def test_requires_label(self):
        with pytest.raises(ValueError):
            OracleTeacher().infer(np.zeros((3, 4, 4)))

    def test_boundary_noise_flips_edges_only(self):
        label = np.zeros((16, 16), dtype=np.int64)
        label[4:12, 4:12] = 2
        teacher = OracleTeacher(boundary_noise=1.0, seed=0)
        out = teacher.infer(np.zeros((3, 16, 16)), label)
        # Interior survives; only the 1-pixel boundary band may flip.
        np.testing.assert_array_equal(out[6:10, 6:10], label[6:10, 6:10])
        assert (out != label).sum() > 0
        flipped = out != label
        # Flipped pixels must have been foreground boundary.
        assert (label[flipped] == 2).all()

    def test_noise_bounds_validated(self):
        with pytest.raises(ValueError):
            OracleTeacher(boundary_noise=1.5)

    def test_zero_noise_idempotent(self, rng):
        teacher = OracleTeacher(boundary_noise=0.0)
        label = rng.integers(0, 3, size=(8, 8))
        a = teacher.infer(np.zeros((3, 8, 8)), label)
        b = teacher.infer(np.zeros((3, 8, 8)), label)
        np.testing.assert_array_equal(a, b)


class TestTeacherNet:
    @pytest.fixture(scope="class")
    def teacher(self):
        return TeacherNet(width=8, seed=1)

    def test_output_shape(self, teacher, rng):
        from repro.autograd import Tensor

        out = teacher(Tensor(rng.normal(size=(1, 3, 16, 16))))
        assert out.shape == (1, 9, 16, 16)

    def test_infer_returns_class_map(self, teacher, rng):
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        pred = teacher.infer(frame)
        assert pred.shape == (16, 16)
        assert (pred >= 0).all() and (pred < 9).all()

    def test_infer_ignores_label(self, teacher, rng):
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        a = teacher.infer(frame)
        b = teacher.infer(frame, label=np.ones((16, 16), dtype=np.int64))
        np.testing.assert_array_equal(a, b)

    def test_infer_preserves_training_mode(self, teacher, rng):
        teacher.train()
        teacher.infer(rng.normal(size=(3, 16, 16)).astype(np.float32))
        assert teacher.training

    def test_soft_infer_is_distribution(self, teacher, rng):
        probs = teacher.soft_infer(rng.normal(size=(3, 16, 16)).astype(np.float32))
        assert probs.shape == (9, 16, 16)
        np.testing.assert_allclose(probs.sum(axis=0), np.ones((16, 16)), rtol=1e-4)

    def test_teacher_larger_than_student(self):
        teacher = TeacherNet()  # default width
        student = StudentNet(width=0.5)
        ratio = teacher.num_parameters() / student.num_parameters()
        assert ratio > 5
