"""Tests for boundary metrics and error decomposition."""

import numpy as np
import pytest

from repro.segmentation.boundary import (
    boundary_f_score,
    boundary_mask,
    error_decomposition,
)


def square_label(size=16, lo=5, hi=11, cls=2):
    label = np.zeros((size, size), dtype=np.int64)
    label[lo:hi, lo:hi] = cls
    return label


class TestBoundaryMask:
    def test_empty_label_no_boundary(self):
        assert not boundary_mask(np.zeros((8, 8), dtype=np.int64)).any()

    def test_square_boundary_ring(self):
        mask = boundary_mask(square_label())
        # The object's interior is not boundary.
        assert not mask[7:9, 7:9].any()
        # Pixels on either side of the edge are.
        assert mask[5, 5] and mask[4, 5]

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            boundary_mask(np.zeros((2, 3, 4)))

    def test_every_change_detected(self, rng):
        label = rng.integers(0, 3, size=(12, 12))
        mask = boundary_mask(label)
        # Any 4-neighbour pair with differing labels must both be marked.
        diff_h = label[:-1, :] != label[1:, :]
        assert mask[:-1, :][diff_h].all() and mask[1:, :][diff_h].all()


class TestBoundaryFScore:
    def test_perfect_prediction(self):
        label = square_label()
        assert boundary_f_score(label, label) == pytest.approx(1.0)

    def test_both_empty_is_one(self):
        empty = np.zeros((8, 8), dtype=np.int64)
        assert boundary_f_score(empty, empty) == 1.0

    def test_one_empty_is_zero(self):
        assert boundary_f_score(np.zeros((16, 16), dtype=np.int64),
                                square_label()) == 0.0

    def test_one_pixel_shift_within_tolerance(self):
        label = square_label()
        shifted = np.roll(label, 1, axis=1)
        assert boundary_f_score(shifted, label, tolerance=1) > 0.95
        assert boundary_f_score(shifted, label, tolerance=0) < 0.9

    def test_large_shift_scores_low(self):
        label = square_label(size=24, lo=4, hi=10)
        far = np.roll(label, 10, axis=0)
        assert boundary_f_score(far, label, tolerance=1) < 0.3

    def test_symmetric(self):
        a = square_label(lo=5, hi=11)
        b = square_label(lo=6, hi=12)
        assert boundary_f_score(a, b) == pytest.approx(boundary_f_score(b, a))


class TestErrorDecomposition:
    def test_perfect_no_error(self):
        label = square_label()
        out = error_decomposition(label, label)
        assert out["boundary_error"] == 0.0
        assert out["interior_error"] == 0.0

    def test_edge_jitter_is_boundary_error(self):
        label = square_label()
        pred = np.roll(label, 1, axis=0)  # 1-pixel jitter
        out = error_decomposition(pred, label, band=2)
        assert out["boundary_error"] > 0.0
        assert out["interior_error"] == 0.0

    def test_gross_miss_is_interior_error(self):
        label = square_label(size=24, lo=4, hi=10)
        pred = np.zeros_like(label)
        pred[14:20, 14:20] = 2  # hallucinated far-away object
        out = error_decomposition(pred, label, band=1)
        assert out["interior_error"] > 0.0

    def test_fractions_bounded(self, rng):
        pred = rng.integers(0, 3, size=(16, 16))
        label = rng.integers(0, 3, size=(16, 16))
        out = error_decomposition(pred, label)
        total_error = out["boundary_error"] + out["interior_error"]
        assert 0.0 <= total_error <= 1.0
        assert 0.0 <= out["boundary_fraction"] <= 1.0
