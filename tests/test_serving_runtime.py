"""End-to-end tests for the multiplexing ServerRuntime (ISSUE 4).

The acceptance property: one server process serves N concurrent client
*processes* — over shm rings and over TCP sockets — with per-session
``RunStats`` bit-identical to the equivalent in-process ``SessionPool``
run.  Also covers the pooled-attachment path (N sessions over one
connection), the HELLO/ACCEPT/BYE handshake's error branches, and the
moved single-endpoint serve loop.
"""

import dataclasses

import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.runtime.session import SessionConfig, build_session, run_shadowtutor
from repro.serving.pool import SessionPool, SessionSpec
from repro.serving.runtime import (
    ServerRuntime,
    SessionBlueprint,
    run_client_processes,
    start_server,
)
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

_HW = (32, 48)


def _config(mode=DistillMode.PARTIAL, **kw):
    return SessionConfig(
        distill=DistillConfig(max_updates=4, threshold=0.7,
                              min_stride=4, max_stride=16, mode=mode),
        student_width=0.25,
        pretrain_steps=10,
        **kw,
    )


def _video(key="fixed-people"):
    return make_category_video(CATEGORY_BY_KEY[key], height=_HW[0], width=_HW[1])


class TestNClientProcesses:
    """The acceptance bar: 1 server process x N>=4 client processes."""

    N = 4
    FRAMES = 10

    def _reference_stats(self):
        specs = [
            SessionSpec(video=_video(), num_frames=self.FRAMES, config=_config())
            for _ in range(self.N)
        ]
        return SessionPool(specs).run().stats

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_multiplexed_processes_bit_identical_to_pool(self, transport):
        blueprints = [SessionBlueprint(_config(), _HW) for _ in range(self.N)]
        handle = start_server(
            blueprints, transport=transport, n_clients=self.N, idle_timeout_s=60
        )
        try:
            jobs = [
                (_config(), _HW, "fixed-people", self.FRAMES, f"s{i}")
                for i in range(self.N)
            ]
            stats = run_client_processes(handle, jobs, timeout_s=180)
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        reference = self._reference_stats()
        assert len(stats) == self.N
        for got, ref in zip(stats, reference):
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )


class TestPooledAttachment:
    """N sessions of one SessionPool over ONE connection to one server."""

    def test_pool_over_one_shm_connection_identical_to_inproc_pool(self):
        def specs(attach_of=None):
            built = []
            for index, (key, width) in enumerate(
                [("fixed-people", 0.25), ("moving-animals", 0.3)]
            ):
                config = dataclasses.replace(_config(), student_width=width)
                if attach_of is not None:
                    config = dataclasses.replace(config, attach=attach_of(index))
                built.append(
                    SessionSpec(video=_video(key), num_frames=10, config=config)
                )
            return built

        local = SessionPool(specs()).run()

        blueprints = [
            SessionBlueprint(dataclasses.replace(_config(), student_width=w), _HW)
            for w in (0.25, 0.3)
        ]
        handle = start_server(blueprints, transport="shm", n_clients=1,
                              idle_timeout_s=60)
        try:
            remote = SessionPool(specs(attach_of=handle.ticket)).run()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        for a, b in zip(local.stats, remote.stats):
            assert a.signature(include_label=False) == b.signature(
                include_label=False
            )

    def test_single_attached_session_full_mode(self):
        """Full distillation (whole-student replies) over the mux too."""
        inproc = run_shadowtutor(
            _video(), 8, _config(mode=DistillMode.FULL), label="t"
        )
        handle = start_server(
            [SessionBlueprint(_config(mode=DistillMode.FULL), _HW)],
            transport="shm", n_clients=1, idle_timeout_s=60,
        )
        try:
            config = dataclasses.replace(
                _config(mode=DistillMode.FULL), attach=handle.ticket(0)
            )
            mux = run_shadowtutor(_video(), 8, config, label="t")
        finally:
            handle.close()
        assert mux.signature() == inproc.signature()
        assert mux.key_frames[0].down_bytes == inproc.key_frames[0].down_bytes


class TestBatchedSweeps:
    """ISSUE 7: gather → batch → scatter key-frame serving.

    A mixed population — identical twins (dedup/batch candidates), a
    different student width, a neural teacher, a different frame
    geometry — must produce bit-identical per-session ``RunStats``
    whether sweeps are batched or not, over shm and sockets.
    """

    FRAMES = 8

    def _population(self):
        neural = dataclasses.replace(
            _config(), teacher_arch="neural", teacher_width=16
        )
        wide = dataclasses.replace(_config(), student_width=0.3)
        return [
            (_config(), (32, 48)),   # identical twins: the broadcast pair
            (_config(), (32, 48)),
            (wide, (32, 48)),        # mixed width: separate weight version
            (neural, (32, 48)),      # neural teacher: stacked infer path
            (_config(), (36, 44)),   # mixed geometry: separate group
        ]

    def _reference_stats(self):
        specs = [
            SessionSpec(
                video=make_category_video(
                    CATEGORY_BY_KEY["fixed-people"], height=hw[0], width=hw[1]
                ),
                num_frames=self.FRAMES,
                config=config,
            )
            for config, hw in self._population()
        ]
        return SessionPool(specs).run().stats

    @pytest.mark.parametrize(
        "transport,batch",
        [("shm", True), ("shm", False), ("socket", True), ("socket", False)],
    )
    def test_mixed_population_bit_identical(self, transport, batch):
        population = self._population()
        blueprints = [SessionBlueprint(c, hw) for c, hw in population]
        handle = start_server(
            blueprints, transport=transport, n_clients=len(population),
            idle_timeout_s=60, batch=batch,
        )
        try:
            jobs = [
                (config, hw, "fixed-people", self.FRAMES, f"s{i}")
                for i, (config, hw) in enumerate(population)
            ]
            stats = run_client_processes(handle, jobs, timeout_s=300)
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        for got, ref in zip(stats, self._reference_stats()):
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )

    def test_runtime_report_surfaces_route_counters(self):
        blueprints = [SessionBlueprint(_config(), _HW) for _ in range(3)]
        handle = start_server(blueprints, transport="shm", n_clients=3,
                              idle_timeout_s=60)
        try:
            jobs = [
                (_config(), _HW, "fixed-people", self.FRAMES, f"s{i}")
                for i in range(3)
            ]
            run_client_processes(handle, jobs, timeout_s=180)
        finally:
            handle.close()
        report = handle.runtime_report
        assert report is not None
        counters = report["serve_counters"]
        assert counters["predicts"] == (
            counters["batched_frames"] + counters["deduped_frames"]
            + counters["single_frames"]
        )
        assert counters["cohorts"] >= 1
        assert counters["cohort_frames"] == counters["predicts"]
        assert counters["max_cohort"] <= 3
        assert sum(report["frames_served"].values()) == counters["predicts"]

    def test_unbatched_runtime_reports_no_cohorts(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60, batch=False,
        )
        try:
            run_client_processes(
                handle, [(_config(), _HW, "fixed-people", 6, "s0")],
                timeout_s=120,
            )
        finally:
            handle.close()
        counters = handle.runtime_report["serve_counters"]
        assert counters["cohorts"] == 0
        assert "predicts" not in counters  # no BatchedTeacher armed


class TestHandshakeAndErrors:
    def test_unknown_session_is_refused(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60,
        )
        try:
            with pytest.raises(IndexError, match="session"):
                handle.ticket(5)
            connection = handle.parent_connection()
            with pytest.raises(RuntimeError, match="refused"):
                connection.open_session(3)
            # The valid session still works after the refusal.
            state = connection.open_session(0)
            assert isinstance(state, dict) and state
            connection.close_session(0)
        finally:
            handle.close()
        assert handle.process.exitcode == 0

    def test_duplicate_hello_is_refused(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60,
        )
        try:
            connection = handle.parent_connection()
            connection.open_session(0)
            with pytest.raises(RuntimeError, match="refused"):
                connection.open_session(0)
            connection.close_session(0)
        finally:
            handle.close()

    def test_attach_rejects_custom_teacher(self):
        from repro.models.teacher import OracleTeacher

        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60,
        )
        try:
            config = dataclasses.replace(_config(), attach=handle.ticket(0))
            with pytest.raises(ValueError, match="teacher"):
                build_session(config, _HW, teacher=OracleTeacher())
            # Unblock shutdown: the refused build never opened session 0.
            connection = handle.parent_connection()
            connection.open_session(0)
            connection.close_session(0)
        finally:
            handle.close()

    def test_attach_of_wrong_type_raises(self):
        config = dataclasses.replace(_config(), attach="not-an-address")
        with pytest.raises(TypeError, match="attach"):
            build_session(config, _HW)

    def test_runtime_validates_blueprints(self):
        """Zero blueprints is legal for a pure-admission server (ISSUE
        5), but a server that can neither serve blueprints nor admit
        anyone could never do anything — still a hard error."""
        with pytest.raises(ValueError, match="Blueprint"):
            ServerRuntime([], admit=False)
        with pytest.raises(ValueError, match="max_sessions"):
            ServerRuntime([], max_sessions=0)
        ServerRuntime([])  # pure-admission runtime constructs fine

    def test_blueprint_strips_attach(self):
        """A blueprint made from an attached config must not make the
        server process recursively attach anywhere."""
        config = dataclasses.replace(_config(), attach="anything")
        blueprint = SessionBlueprint(config, _HW)
        assert blueprint.config.attach is None


class TestMovedServeLoop:
    def test_serve_endpoint_is_the_serve_implementation(self):
        """Server.serve delegates to the moved loop — same protocol,
        same counts (the dedicated-process e2e tests cover the rest)."""
        from repro.models.student import StudentNet
        from repro.models.teacher import OracleTeacher
        from repro.runtime.server import Server
        from repro.serving.runtime import serve_endpoint
        from repro.transport.shm import spawn_shm_pair

        video = _video()
        video.reset()
        frames = list(video.frames(2))

        def run_one(use_method):
            a, b = spawn_shm_pair(slots=8, slot_nbytes=1 << 20, timeout_s=10.0)
            server = Server(
                StudentNet(width=0.25, seed=3), OracleTeacher(),
                DistillConfig(max_updates=2),
            )
            try:
                import threading

                served = []
                loop = (
                    (lambda: served.append(server.serve(b)))
                    if use_method
                    else (lambda: served.append(serve_endpoint(server, b)))
                )
                thread = threading.Thread(target=loop)
                thread.start()
                initial = a.recv()
                assert initial
                for frame, label in frames:
                    a.send((frame, label), nbytes=frame.nbytes)
                    reply = a.recv()
                    assert reply.update
                a.send(None, nbytes=1)
                thread.join(timeout=30)
                return served[0]
            finally:
                b.close(), a.close()

        assert run_one(True) == run_one(False) == len(frames)
