"""Tests for the shared run executor and its cache."""

import numpy as np
import pytest

from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import cache_size, category_run, clear_cache
from repro.video.dataset import LVS_CATEGORIES

TINY = ExperimentScale(num_frames=25, student_width=0.25, pretrain_steps=5,
                       frame_height=32, frame_width=48)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCategoryRun:
    def test_all_schemes_run(self):
        spec = LVS_CATEGORIES[1]
        for scheme in ("partial", "full", "naive", "wild"):
            stats = category_run(spec, TINY, scheme)
            assert stats.num_frames == TINY.num_frames

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            category_run(LVS_CATEGORIES[0], TINY, "magic")

    def test_cache_hit_returns_same_object(self):
        spec = LVS_CATEGORIES[1]
        a = category_run(spec, TINY, "partial")
        b = category_run(spec, TINY, "partial")
        assert a is b
        assert cache_size() == 1

    def test_cache_key_includes_options(self):
        spec = LVS_CATEGORIES[1]
        category_run(spec, TINY, "partial")
        category_run(spec, TINY, "partial", forced_delay=1)
        category_run(spec, TINY, "partial", bandwidth_mbps=8.0)
        category_run(spec, TINY, "partial", fps=7.0)
        assert cache_size() == 4

    def test_forced_delay_changes_run(self):
        spec = LVS_CATEGORIES[1]
        free = category_run(spec, TINY, "partial")
        pinned = category_run(spec, TINY, "partial", forced_delay=8)
        # Different update timing: key-frame schedule may differ, and
        # the runs must be distinct objects.
        assert free is not pinned

    def test_bandwidth_affects_naive(self):
        spec = LVS_CATEGORIES[1]
        fast = category_run(spec, TINY, "naive", bandwidth_mbps=80.0)
        slow = category_run(spec, TINY, "naive", bandwidth_mbps=8.0)
        assert slow.throughput_fps < fast.throughput_fps

    def test_fps_resampling_applied(self):
        spec = LVS_CATEGORIES[0]
        native = category_run(spec, TINY, "wild")
        low = category_run(spec, TINY, "wild", fps=7.0)
        # Same frame count; different streams (faster dynamics).
        assert native.num_frames == low.num_frames
        assert native.mean_miou != pytest.approx(low.mean_miou)
