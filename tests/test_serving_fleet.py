"""Fleet-grade tests for the sharded server fleet (ISSUE 10).

The acceptance properties: placement is a pure function of the
admission sequence (:class:`PlacementPolicy`, mirrored bit-for-bit by
the cross-process :class:`FleetLedger`); a fleet serves every session
``RunStats``-bit-identical to the in-process reference — over shm
(director handoff) and sockets (SO_REUSEPORT + typed redirects),
including churn and a forced mid-run redirect; the shared teacher
segment is digest-checked and write-blocked; and an idle socket fleet
parks on its doorbells instead of spinning.
"""

import dataclasses
import random
import time

import numpy as np
import pytest

from repro.distill.config import DistillConfig
from repro.runtime.session import SessionConfig, run_shadowtutor
from repro.serving.fleet import (
    FleetAddress,
    FleetLedger,
    PlacementPolicy,
    SharedTeacherSegment,
    placement_key,
    start_fleet,
)
from repro.serving.runtime import admit_message, run_churn_processes
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

_HW = (24, 32)


def _config(width=0.25, stride=4, **kw):
    return SessionConfig(
        distill=DistillConfig(max_updates=2, threshold=0.7,
                              min_stride=stride, max_stride=16),
        student_width=width,
        pretrain_steps=10,
        **kw,
    )


def _admit(config, hw=_HW):
    return admit_message(config, hw)


def _reference(config, frames, key="fixed-people"):
    video = make_category_video(CATEGORY_BY_KEY[key],
                                height=_HW[0], width=_HW[1])
    return run_shadowtutor(video, frames, config, label="ref")


# ----------------------------------------------------------------------
# Placement: the pure function and its affinity/least-loaded contract
# ----------------------------------------------------------------------
class TestPlacementKey:
    def test_identical_blueprints_share_a_key(self):
        assert placement_key(_admit(_config())) == placement_key(
            _admit(_config())
        )

    def test_key_covers_the_whole_blueprint(self):
        base = placement_key(_admit(_config()))
        assert placement_key(_admit(_config(width=0.3))) != base
        # Stride bounds are part of the tenant identity: two groups
        # differing only in cadence must be separable by placement.
        assert placement_key(_admit(_config(stride=2))) != base
        assert placement_key(_admit(_config(), hw=(32, 48))) != base

    def test_keys_fit_the_ledger_cells(self):
        key = placement_key(_admit(_config()))
        assert 0 < key < 1 << 63  # 0 is the empty-slot sentinel


class TestPlacementPolicy:
    def test_novel_keys_spread_least_loaded_lowest_index_ties(self):
        policy = PlacementPolicy(3)
        assert policy.place(11, 0) == 0  # all empty: lowest index
        assert policy.place(22, 0) == 1
        assert policy.place(33, 0) == 2
        assert policy.place(44, 0) == 0  # tie again at 1,1,1
        assert policy.loads == [2, 1, 1]

    def test_affinity_beats_load(self):
        policy = PlacementPolicy(2)
        assert policy.place(7, 0) == 0
        assert policy.place(7, 0) == 0  # shard 1 is emptier; key wins
        assert policy.place(7, 0) == 0
        assert policy.loads == [3, 0]

    def test_placement_is_a_pure_function_of_the_sequence(self):
        rng = random.Random(10)
        ops, live = [], []
        for _ in range(200):
            if live and rng.random() < 0.4:
                ops.append(("release", live.pop(rng.randrange(len(live)))))
            else:
                key = rng.randrange(1, 40)
                ops.append(("place", key))
                live.append(key)

        def replay():
            policy = PlacementPolicy(3)
            decisions = []
            for op, key in ops:
                if op == "place":
                    decisions.append(policy.place(key, rng2.randrange(3)))
                else:
                    policy.release(key)
            return decisions, policy.snapshot()

        rng2 = random.Random(99)
        first = replay()
        rng2 = random.Random(99)
        assert replay() == first

    def test_release_drains_the_entry_so_a_tenant_can_move(self):
        policy = PlacementPolicy(2)
        assert policy.place(5, 0) == 0
        policy.place(6, 0)  # shard 1
        policy.place(7, 0)  # tie -> shard 0
        policy.release(5)
        policy.release(7)
        # Key 5 fully drained: it is novel again, and shard 0 is now
        # the emptier one.
        assert policy.place(5, 0) == 0
        assert policy.loads == [1, 1]

    def test_reservation_makes_a_redirect_single_count(self):
        policy = PlacementPolicy(2)
        policy.place(1, 0)
        policy.place(2, 1)  # least-loaded: shard 1 owns key 2
        # Shard 0 consults for another key-2 session: target counted
        # immediately, one reservation parked.
        assert policy.place(2, 0) == 1
        assert policy.loads == [1, 2]
        # The redirected client re-ADMITs at shard 1: consumes the
        # reservation instead of double-counting.
        assert policy.place(2, 1) == 1
        assert policy.loads == [1, 2]
        assert policy.entries[2] == [1, 2, 0]

    def test_drop_without_claim_raises(self):
        policy = PlacementPolicy(2)
        with pytest.raises(ValueError, match="no outstanding claim"):
            policy.release(9)
        policy.place(9, 0)
        policy.release(9)
        with pytest.raises(ValueError, match="no outstanding claim"):
            policy.abort(9)

    def test_needs_a_shard(self):
        with pytest.raises(ValueError, match="at least one shard"):
            PlacementPolicy(0)


class TestFleetLedger:
    def test_mirrors_the_policy_over_random_op_sequences(self):
        """The cross-process ledger realises exactly the pure policy:
        identical decisions and identical snapshots over randomized
        place/release/abort interleavings — including enough releases
        to exercise the linear-probe displaced-run re-insert."""
        rng = random.Random(4)
        policy = PlacementPolicy(3)
        # Capacity 7 with keys drawn from a wide range forces probe
        # collisions and wrap-around displacement.
        ledger = FleetLedger(3, capacity=7)
        live = []
        for step in range(400):
            if live and (rng.random() < 0.45 or len(live) >= 6):
                key = live.pop(rng.randrange(len(live)))
                if rng.random() < 0.5:
                    policy.release(key)
                    ledger.release(key)
                else:
                    policy.abort(key)
                    ledger.abort(key)
            else:
                key = rng.choice([3, 10, 17, 24, 5, 12, 1 << 62])
                caller = rng.choice([None, 0, 1, 2])
                entry = policy.entries.get(key)
                # A place that consumes a parked reservation is the
                # redirected client *arriving* — the claim (and its
                # eventual release) was already counted at redirect
                # time, so it must not enter the release pool twice.
                consumes = (
                    entry is not None
                    and caller == entry[0]
                    and entry[2] > 0
                )
                assert policy.place(key, caller) == ledger.place(key, caller)
                if not consumes:
                    live.append(key)
            assert ledger.snapshot() == policy.snapshot()

    def test_full_table_raises_with_the_knob_named(self):
        ledger = FleetLedger(2, capacity=2)
        ledger.place(1, 0)
        ledger.place(2, 0)
        with pytest.raises(RuntimeError, match="ledger_capacity"):
            ledger.place(3, 0)

    def test_validates_construction(self):
        with pytest.raises(ValueError, match="at least one shard"):
            FleetLedger(0)
        with pytest.raises(ValueError, match="capacity"):
            FleetLedger(1, capacity=0)


# ----------------------------------------------------------------------
# Shared teacher segment
# ----------------------------------------------------------------------
class TestSharedTeacherSegment:
    def test_aliased_teacher_is_bitwise_the_materialised_one(self):
        from repro.models.teacher import TeacherNet
        from repro.nn.serialize import state_dict_digest

        seg = SharedTeacherSegment(width=8, seed=3)
        try:
            aliased = seg.build_teacher()
            reference = TeacherNet(width=8, seed=3)
            assert state_dict_digest(aliased.state_dict()) == (
                state_dict_digest(reference.state_dict())
            )
            # The arrays really are views over the one mapping, not
            # copies — the whole point of the segment.
            name, param = next(iter(aliased.named_parameters()))
            assert param.data.base is not None
            assert seg.spec_key == ("neural", 8, 3)
        finally:
            seg.close()

    def test_aliased_arrays_refuse_writes(self):
        seg = SharedTeacherSegment(width=8, seed=0)
        try:
            teacher = seg.build_teacher()
            _, param = next(iter(teacher.named_parameters()))
            with pytest.raises(ValueError, match="read-only"):
                param.data[...] = 0.0
        finally:
            seg.close()

    def test_tampered_segment_fails_the_digest_check(self):
        seg = SharedTeacherSegment(width=8, seed=0)
        try:
            seg.tamper()
            with pytest.raises(ValueError, match="digest mismatch"):
                seg.build_teacher()
        finally:
            seg.close()

    def test_close_is_idempotent(self):
        seg = SharedTeacherSegment(width=8, seed=0)
        seg.close()
        seg.close()


# ----------------------------------------------------------------------
# End-to-end: fleets serve bit-identical sessions
# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    def _jobs(self):
        # Two tenants (distinct blueprints) x two sessions each, with
        # churn: staggered joins, different departure times.  Affinity
        # must co-locate each tenant; the fleet must still serve every
        # session bit-identical to its in-process twin.
        config_a, config_b = _config(width=0.25), _config(width=0.3)
        # The second session of each tenant joins while the first is
        # still being served (12/10 frames at stride 4 span several
        # key rounds), so affinity resolves against a live entry; the
        # short joiners then depart first — churn in both directions.
        return [
            (0.0, config_a, _HW, "fixed-people", 12, "a0"),
            (0.1, config_b, _HW, "fixed-people", 10, "b0"),
            (0.4, config_a, _HW, "fixed-people", 6, "a1"),
            (0.5, config_b, _HW, "fixed-people", 6, "b1"),
        ]

    def _check_stats(self, stats, jobs):
        for got, (_, config, _, key, frames, _) in zip(stats, jobs):
            ref = _reference(config, frames, key)
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_churned_fleet_bit_identical_to_references(self, transport):
        jobs = self._jobs()
        handle = start_fleet(2, transport=transport, n_clients=len(jobs),
                             idle_timeout_s=60)
        try:
            stats = run_churn_processes(handle, jobs, timeout_s=300)
        finally:
            handle.close()
        self._check_stats(stats, jobs)
        report = handle.fleet_report
        assert report["exit_reasons"] == ["quiesced", "quiesced"]
        assert report["placed"] == len(jobs)
        assert sum(report["frames_served"]) > 0
        # Every claim drained on the way out — leftover load is a leak.
        assert handle.ledger_snapshot() == {
            "loads": [0, 0], "entries": {},
        }

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_affinity_and_spread_over_the_wire(self, transport):
        """Sequential admissions make placement observable exactly:
        tenant A's two live sessions co-locate on shard 0, tenant B's
        on shard 1, and departures drain the entries."""
        from repro.runtime.session import build_session

        config_a, config_b = _config(width=0.25), _config(width=0.3)
        handle = start_fleet(2, transport=transport, n_clients=4,
                             idle_timeout_s=60)
        clients = []
        try:
            for slot, config in enumerate(
                [config_a, config_b, config_a, config_b]
            ):
                attach = dataclasses.replace(
                    config, attach=handle.admit_address(slot)
                )
                clients.append(build_session(attach, _HW))
            assert handle.ledger_snapshot() == {
                "loads": [2, 2],
                "entries": {
                    placement_key(_admit(config_a)): (0, 2, 0),
                    placement_key(_admit(config_b)): (1, 2, 0),
                },
            }
            for client in clients:
                client.server.close()
            clients = []
            # BYEs are processed asynchronously by the shards; the
            # entries must drain (bounded wait, no leftover load).
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if handle.ledger_snapshot() == {"loads": [0, 0],
                                                "entries": {}}:
                    break
                time.sleep(0.02)
            assert handle.ledger_snapshot() == {"loads": [0, 0],
                                                "entries": {}}
        finally:
            for client in clients:
                client.server.close()
            handle.close()

    def test_forced_mid_run_redirect_is_bit_identical(self):
        """Dial the WRONG shard's direct port on purpose: the typed
        redirect must bounce the client to the owning shard and the
        session must still match its in-process twin bitwise."""
        config = _config()
        handle = start_fleet(2, transport="socket", idle_timeout_s=60)
        try:
            import multiprocessing as mp

            from repro.serving.runtime import _client_process_main

            front = handle.admit_address(0)
            owner = handle._ledger.place(
                placement_key(_admit(config)), None
            )
            handle._ledger.release(placement_key(_admit(config)))
            wrong = 1 - owner
            jobs = [
                # First client in through the front door pins the
                # tenant to `owner`; the second dials `wrong`'s direct
                # port mid-run and must be redirected.
                (front, 10, "first"),
                (dataclasses.replace(front, info=front.shards[wrong]),
                 8, "forced"),
            ]
            workers = []
            for address, frames, label in jobs:
                parent, child = mp.Pipe(duplex=False)
                proc = mp.Process(
                    target=_client_process_main,
                    args=(address, config, _HW, "fixed-people", frames,
                          label, child, 0.4 if label == "forced" else 0.0),
                    daemon=True,
                )
                proc.start()
                child.close()
                workers.append((proc, parent, frames))
            stats = []
            for proc, conn, frames in workers:
                assert conn.poll(180)
                status, payload = conn.recv()
                assert status == "ok", payload
                stats.append((payload, frames))
                proc.join(timeout=30)
        finally:
            handle.close()
        for got, frames in stats:
            ref = _reference(config, frames)
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )
        # The wrong-port dial really crossed the redirect path.
        assert handle.fleet_report["redirects"] >= 1
        assert handle.fleet_report["placed"] == 2

    def test_fleets_are_pure_admission(self):
        handle = start_fleet(1, transport="socket", idle_timeout_s=30)
        try:
            with pytest.raises(TypeError, match="pure-admission"):
                handle.address(0)
            address = handle.admit_address(0)
            assert isinstance(address, FleetAddress)
            assert address.session is None
            assert len(address.shards) == 1
        finally:
            handle.close()

    def test_idle_socket_fleet_parks_instead_of_spinning(self):
        """Satellite 3's regression: shards blocked on empty listeners
        must sit in the doorbell select, not busy-poll.  CPU time
        accrued by an idle 2-shard fleet over a second of wall clock
        stays near zero."""

        def cpu_seconds(pid):
            with open(f"/proc/{pid}/stat") as handle_:
                fields = handle_.read().rsplit(") ", 1)[1].split()
            ticks = int(fields[11]) + int(fields[12])  # utime + stime
            import os
            return ticks / os.sysconf("SC_CLK_TCK")

        handle = start_fleet(2, transport="socket", idle_timeout_s=60)
        try:
            time.sleep(0.3)  # let startup (teacher build, imports) settle
            pids = [proc.pid for proc in handle.processes]
            before = [cpu_seconds(pid) for pid in pids]
            time.sleep(1.0)
            after = [cpu_seconds(pid) for pid in pids]
        finally:
            handle.close()
        for pid, t0, t1 in zip(pids, before, after):
            # A spinning sweep loop burns ~the full second; a parked
            # one wakes only for its nap ceiling.  0.2s of slack
            # absorbs scheduler noise.
            assert t1 - t0 < 0.2, (
                f"shard {pid} burned {t1 - t0:.2f}s CPU while idle"
            )
