"""Hypothesis property-based tests on core data structures and
invariants spanning multiple modules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import Tensor, functional as F
from repro.autograd.conv import conv2d
from repro.distill.config import DistillConfig
from repro.network.model import NetworkModel
from repro.nn.serialize import apply_state_dict, clone_state_dict, state_dict_diff
from repro.models.student import StudentNet, partial_freeze
from repro.segmentation.metrics import mean_iou
from repro.striding.adaptive import AdaptiveStride


small_floats = st.floats(-3.0, 3.0, allow_nan=False, width=32)


class TestAutogradProperties:
    @given(data=st.lists(small_floats, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_sum_grad_is_ones(self, data):
        t = Tensor(np.array(data, dtype=np.float32), requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones(len(data)))

    @given(
        a=st.lists(small_floats, min_size=4, max_size=4),
        b=st.lists(small_floats, min_size=4, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_addition_commutes(self, a, b):
        ta, tb = Tensor(np.array(a)), Tensor(np.array(b))
        np.testing.assert_allclose((ta + tb).data, (tb + ta).data)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_softmax_is_distribution(self, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(size=(2, 7)).astype(np.float32) * 5)
        s = F.softmax(x, axis=1).data
        assert (s >= 0).all()
        np.testing.assert_allclose(s.sum(axis=1), np.ones(2), rtol=1e-4)

    @given(seed=st.integers(0, 1000), scale=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_conv_linearity(self, seed, scale):
        # conv(scale * x) == scale * conv(x) for bias-free convolution.
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)).astype(np.float32))
        a = conv2d(Tensor(x * scale), w, None, padding=1).data
        b = conv2d(Tensor(x), w, None, padding=1).data * scale
        np.testing.assert_allclose(a, b, rtol=1e-3, atol=1e-4)


class TestMetricProperties:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_miou_symmetric_when_classes_match(self, seed):
        # If pred and label use the same class set, swapping them keeps
        # the per-class IoU (intersection and union are symmetric) —
        # but only classes present in the label are scored, so restrict
        # to full-coverage cases.
        rng = np.random.default_rng(seed)
        pred = rng.integers(0, 2, size=(8, 8))
        label = rng.integers(0, 2, size=(8, 8))
        if set(np.unique(pred)) == set(np.unique(label)) == {0, 1}:
            assert mean_iou(pred, label, 2) == pytest.approx(
                mean_iou(label, pred, 2)
            )

    @given(seed=st.integers(0, 5000))
    @settings(max_examples=30, deadline=None)
    def test_miou_identity_is_one(self, seed):
        rng = np.random.default_rng(seed)
        label = rng.integers(0, 9, size=(10, 10))
        assert mean_iou(label.copy(), label) == pytest.approx(1.0)


class TestSerializationProperties:
    @given(seed=st.integers(0, 100), delta=st.floats(-1.0, 1.0, allow_nan=False))
    @settings(max_examples=10, deadline=None)
    def test_diff_apply_roundtrip(self, seed, delta):
        # Perturb the server's trainable weights arbitrarily; applying
        # the diff must make the client's trainable weights identical.
        src = StudentNet(width=0.25, seed=seed % 5)
        dst = StudentNet(width=0.25, seed=seed % 5)
        partial_freeze(src)
        for p in src.trainable_parameters():
            p.data += np.float32(delta)
        apply_state_dict(dst, state_dict_diff(src, trainable_only=True))
        for (name, ps), (_, pd) in zip(
            src.named_parameters(), dst.named_parameters()
        ):
            np.testing.assert_array_equal(ps.data, pd.data, err_msg=name)

    @given(seed=st.integers(0, 100))
    @settings(max_examples=10, deadline=None)
    def test_clone_never_aliases(self, seed):
        student = StudentNet(width=0.25, seed=seed % 5)
        state = student.state_dict()
        cloned = clone_state_dict(state)
        for key in state:
            assert not np.shares_memory(state[key], cloned[key])


class TestStrideProperties:
    @given(metrics=st.lists(st.floats(0.0, 1.0), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_stride_always_clamped(self, metrics):
        policy = AdaptiveStride(DistillConfig())
        for m in metrics:
            s = policy.update(m)
            assert 8.0 <= s <= 64.0
            assert 8 <= policy.frames_to_next() <= 64


class TestNetworkProperties:
    @given(
        nbytes=st.integers(0, 10**8),
        bw=st.floats(1.0, 1000.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_transfer_time_monotone_in_size(self, nbytes, bw):
        net = NetworkModel(bandwidth_mbps=bw)
        assert net.transfer_time(nbytes + 1000) >= net.transfer_time(nbytes)

    @given(nbytes=st.integers(1, 10**8))
    @settings(max_examples=50, deadline=None)
    def test_transfer_time_monotone_in_bandwidth(self, nbytes):
        slow = NetworkModel(bandwidth_mbps=8.0)
        fast = NetworkModel(bandwidth_mbps=80.0)
        assert fast.transfer_time(nbytes) <= slow.transfer_time(nbytes)
