"""Tests for the TCP socket transport (cross-host serving).

Same contracts the shm ring is held to: bitwise message round trips,
measured wire sizes, clean spawn/join of a server child, and a full
ShadowTutor session over ``SessionConfig(transport="socket")`` with
``RunStats`` identical to the in-process run.
"""

import numpy as np
import pytest

from repro.distill.config import DistillConfig
from repro.runtime.server import ServerReply
from repro.runtime.session import SessionConfig, run_shadowtutor
from repro.transport import registry
from repro.transport.socket import SocketTransport, make_pair, run_in_subprocess
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video


class TestSocketPair:
    def test_roundtrip_bitwise(self):
        a, b = make_pair(timeout_s=10.0)
        try:
            frame = np.random.default_rng(0).random((3, 32, 48)).astype(np.float32)
            label = np.random.default_rng(1).integers(0, 9, (32, 48))
            a.send((frame, label), nbytes=frame.nbytes)
            got_frame, got_label = b.recv()
            assert got_frame.tobytes() == frame.tobytes()
            assert got_label.tobytes() == label.tobytes()
        finally:
            b.close(), a.close()

    def test_measured_sizes_match_wire(self):
        from repro.transport import wire

        a, b = make_pair(timeout_s=10.0)
        try:
            msg = {"w": np.ones((4, 4), np.float32)}
            a.send(msg, nbytes=64)
            b.recv()
            assert b.last_recv_nbytes == wire.encoded_nbytes(msg)
        finally:
            b.close(), a.close()

    def test_tagged_messages_and_poll(self):
        a, b = make_pair(timeout_s=10.0)
        try:
            assert not b.poll()
            a.send_tagged(9, np.arange(4, dtype=np.int32))
            session, payload = b.recv_tagged()
            assert session == 9
            np.testing.assert_array_equal(payload, np.arange(4))
        finally:
            b.close(), a.close()

    def test_recv_timeout(self):
        a, b = make_pair(timeout_s=0.1)
        try:
            with pytest.raises(TimeoutError):
                b.recv()
        finally:
            b.close(), a.close()

    def test_peer_close_raises_connection_error(self):
        a, b = make_pair(timeout_s=5.0)
        a.close()
        try:
            with pytest.raises(ConnectionError):
                b.recv()
        finally:
            b.close()

    def test_nonblocking_requests(self):
        a, b = make_pair(timeout_s=10.0)
        try:
            req = b.irecv()
            assert not req.test()
            a.send(np.ones(3, np.float32), 12)
            got = req.wait()
            np.testing.assert_array_equal(got, np.ones(3))
            assert req.payload() is got
        finally:
            b.close(), a.close()


def _echo_server(endpoint):
    while True:
        msg = endpoint.recv()
        if msg is None:
            break
        endpoint.send(msg, 0)


class TestSubprocess:
    def test_echo_across_process_boundary(self):
        endpoint, proc = run_in_subprocess(_echo_server, timeout_s=30.0)
        try:
            reply = ServerReply(
                update={"w": np.ones((8, 8), np.float32)},
                metric=0.5, steps=2, initial_metric=0.25,
            )
            endpoint.send(reply, nbytes=256)
            echoed = endpoint.recv()
            assert isinstance(echoed, ServerReply)
            assert echoed.update["w"].tobytes() == reply.update["w"].tobytes()
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=20)
            endpoint.close()
        assert proc.exitcode == 0

    def test_registered_in_registry(self):
        assert "socket" in registry.available_transports()
        definition = registry.get_transport("socket")
        assert definition.spawn is not None
        assert definition.serve_many is not None


class TestSessionOverSocket:
    def test_socket_session_identical_to_inproc(self):
        """The transport contract: a dedicated-server session over TCP
        produces RunStats identical to the in-process run."""

        def run(transport):
            config = SessionConfig(
                distill=DistillConfig(max_updates=4, threshold=0.7,
                                      min_stride=4, max_stride=16),
                student_width=0.25,
                pretrain_steps=10,
                transport=transport,
            )
            video = make_category_video(
                CATEGORY_BY_KEY["fixed-people"], height=32, width=48
            )
            return run_shadowtutor(video, 16, config, label="t")

        assert run("socket").signature() == run("inproc").signature()
