"""Unit tests for the telemetry subsystem (ISSUE 8).

The obs package is the one part of the stack that is *allowed* to be
nondeterministic in what it records (wall-clock durations) but must be
deterministic in how it aggregates: bucket placement is a pure function
of the value, and merging is a pure function of the snapshot multiset.
These tests pin both down, plus the arming switchboard and the bounded
trace ring.
"""

import json
import math
import random

import pytest

from repro import obs
from repro.obs.metrics import (
    BUCKET_EXP_MAX,
    BUCKET_EXP_MIN,
    NUM_BUCKETS,
    MetricsRegistry,
    bucket_bounds,
    bucket_index,
    format_snapshot_table,
    merge_snapshots,
)
from repro.obs.trace import SpanRecorder, merge_traces, write_trace


@pytest.fixture(autouse=True)
def _disarmed():
    """Every test starts and ends disarmed — arming is process-global."""
    obs.disarm()
    yield
    obs.disarm()


# ----------------------------------------------------------------------
# Buckets
# ----------------------------------------------------------------------
def test_bucket_index_is_deterministic_log2():
    # Bucket i covers (2**(e-1), 2**e]: exact powers of two are the
    # *upper* edge of their bucket (the frexp m == 0.5 fold-down).
    assert bucket_index(1.0) == bucket_index(0.75)
    assert bucket_index(1.0) + 1 == bucket_index(1.5)
    assert bucket_index(2.0) == bucket_index(1.5)
    # Non-positive and NaN all land in bucket 0, never raise.
    assert bucket_index(0.0) == 0
    assert bucket_index(-5.0) == 0
    assert bucket_index(float("nan")) == 0
    # Clamped at both ends.
    assert bucket_index(1e-12) == 0
    assert bucket_index(1e12) == NUM_BUCKETS - 1
    # Every finite positive value maps inside the table.
    for exp in range(-30, 30):
        assert 0 <= bucket_index(2.0 ** exp) < NUM_BUCKETS


def test_bucket_bounds_match_index():
    edges = bucket_bounds()
    assert len(edges) == NUM_BUCKETS
    assert edges[-1] == float("inf")
    # A value strictly below an edge (and above the previous) indexes
    # that edge's bucket.
    for i, edge in enumerate(edges[:-1]):
        assert bucket_index(edge) == i
        assert bucket_index(edge * 0.9) == i
    assert BUCKET_EXP_MAX - BUCKET_EXP_MIN + 1 == NUM_BUCKETS


# ----------------------------------------------------------------------
# Registry + merge
# ----------------------------------------------------------------------
def _populated_registry(source, scale):
    reg = MetricsRegistry(source=source)
    reg.counter("events").inc(3 * scale)
    reg.gauge("depth").set(2.0 * scale)
    for v in (0.001 * scale, 0.01, 1.5):
        reg.histogram("lat_s").observe(v)
    reg.series("timeline").append([scale, 0.5], t=float(scale))
    return reg


def test_registry_name_kinds_are_exclusive():
    reg = MetricsRegistry()
    reg.counter("x").inc()
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")
    # Same-kind reuse returns the same instrument.
    assert reg.counter("x") is reg.counter("x")


def test_snapshot_is_json_able_and_clear_resets():
    reg = _populated_registry("a", 1)
    snap = reg.snapshot()
    json.dumps(snap)  # must not raise
    assert snap["counters"]["events"] == 3
    assert snap["histograms"]["lat_s"]["count"] == 3
    assert math.isclose(snap["histograms"]["lat_s"]["max"], 1.5)
    reg.clear()
    empty = reg.snapshot()
    assert empty["counters"] == {} and empty["series"] == {}


def test_merge_is_order_independent_and_sums():
    snaps = [_populated_registry(f"p{i}", i + 1).snapshot() for i in range(4)]
    merged = merge_snapshots(snaps)
    assert merged["counters"]["events"] == sum(3 * (i + 1) for i in range(4))
    assert merged["gauges"]["depth"] == 8.0  # max across processes
    assert merged["histograms"]["lat_s"]["count"] == 12
    assert len(merged["series"]["timeline"]) == 4
    # Pure function of the multiset: shuffling input changes nothing.
    for seed in range(3):
        shuffled = list(snaps)
        random.Random(seed).shuffle(shuffled)
        assert json.dumps(merge_snapshots(shuffled), sort_keys=True) == \
            json.dumps(merged, sort_keys=True)


def test_merge_rejects_bucket_count_mismatch():
    a = _populated_registry("a", 1).snapshot()
    b = _populated_registry("b", 1).snapshot()
    b["histograms"]["lat_s"]["counts"] = [0] * (NUM_BUCKETS + 1)
    with pytest.raises(ValueError):
        merge_snapshots([a, b])


def test_format_snapshot_table_renders_all_kinds():
    text = format_snapshot_table(_populated_registry("a", 1).snapshot())
    for needle in ("events", "depth", "lat_s", "timeline", "counter",
                   "gauge", "histogram", "series"):
        assert needle in text


def test_series_is_bounded():
    reg = MetricsRegistry(series_capacity=8)
    s = reg.series("t")
    for i in range(100):
        s.append(i, t=float(i))
    entries = reg.snapshot()["series"]["t"]
    assert len(entries) == 8
    assert entries[0][1] == 92  # newest entries kept


# ----------------------------------------------------------------------
# Trace ring
# ----------------------------------------------------------------------
def test_trace_ring_is_bounded_and_counts_drops():
    rec = SpanRecorder(capacity=4)
    for i in range(10):
        with rec.span("work", i=i):
            pass
    assert len(list(rec.events)) == 4
    assert rec.recorded == 10
    assert rec.dropped == 6


def test_chrome_events_schema(tmp_path):
    rec = SpanRecorder()
    with rec.span("outer", session="s0"):
        rec.instant("mark", level=2)
    events = rec.chrome_events(pid=7, tid=1)
    assert len(events) == 2
    for event in events:
        for key in ("ph", "name", "ts", "pid", "tid"):
            assert key in event
        assert event["pid"] == 7
    spans = [e for e in events if e["ph"] == "X"]
    instants = [e for e in events if e["ph"] == "i"]
    assert spans[0]["name"] == "outer" and "dur" in spans[0]
    assert spans[0]["args"] == {"session": "s0"}
    assert instants[0]["s"] == "p"
    # write_trace emits the Chrome trace-event JSON envelope.
    path = tmp_path / "trace.json"
    write_trace(str(path), merge_traces([events]))
    with open(path, encoding="utf-8") as fh:
        loaded = json.load(fh)
    assert loaded["traceEvents"][0]["name"] in ("outer", "mark")


def test_merge_traces_sorts_by_timestamp():
    a = [{"ph": "X", "name": "b", "ts": 5.0, "pid": 1, "tid": 0}]
    b = [{"ph": "X", "name": "a", "ts": 1.0, "pid": 2, "tid": 0}]
    merged = merge_traces([a, b])
    assert [e["ts"] for e in merged] == [1.0, 5.0]


# ----------------------------------------------------------------------
# Arming switchboard
# ----------------------------------------------------------------------
def test_disarmed_calls_are_harmless_and_unexported(tmp_path):
    assert not obs.enabled()
    obs.counter("never").inc()          # void registry, no error
    with obs.span("never"):
        pass
    assert obs.snapshot() is None
    assert obs.trace_events() == []
    assert obs.export_artifacts(str(tmp_path)) is None
    assert list(tmp_path.iterdir()) == []


def test_arm_and_export_roundtrip(tmp_path):
    obs.arm(metrics=True, trace=True, source="t0")
    assert obs.enabled() and not obs.engine_timing()
    obs.counter("hits").inc(2)
    with obs.span("phase"):
        pass
    path = obs.export_artifacts(str(tmp_path))
    with open(path, encoding="utf-8") as fh:
        artifact = json.load(fh)
    assert artifact["source"] == "t0"
    assert artifact["snapshot"]["counters"]["hits"] == 2
    assert artifact["trace"][0]["name"] == "phase"
    assert artifact["trace_dropped"] == 0
    obs.disarm()
    assert not obs.enabled() and obs.snapshot() is None


@pytest.mark.parametrize("raw,expect", [
    ("", (False, False, False)),
    ("0", (False, False, False)),
    ("1", (True, True, False)),
    ("metrics", (True, False, False)),
    ("metrics,trace", (True, True, False)),
    ("metrics, trace, engine", (True, True, True)),
    ("engine", (False, False, True)),
])
def test_arm_from_env_parsing(monkeypatch, raw, expect):
    metrics, trace, engine = expect
    monkeypatch.setenv(obs.ENV_FEATURES, raw)
    armed = obs.arm_from_env(source="t")
    assert armed == any(expect)
    assert obs.engine_timing() == engine
    if metrics:
        assert obs.snapshot() is not None
    else:
        assert obs.snapshot() is None
    if trace:
        with obs.span("x"):
            pass
        assert obs.trace_events()
    else:
        with obs.span("x"):
            pass
        assert obs.trace_events() == []


def test_obs_config_env_roundtrip():
    config = obs.ObsConfig(metrics=True, trace=True, engine=True)
    assert config.env_value() == "metrics,trace,engine"
    assert obs.arm_from_config(config, source="t")
    assert obs.engine_timing()
    assert not obs.arm_from_config(
        obs.ObsConfig(metrics=False, trace=False, engine=False)
    )


def test_arm_from_config_none_delegates_to_env(monkeypatch):
    monkeypatch.setenv(obs.ENV_FEATURES, "metrics")
    assert obs.arm_from_config(None, source="t")
    assert obs.enabled() and obs.snapshot() is not None
    monkeypatch.delenv(obs.ENV_FEATURES)
    obs.disarm()
    assert not obs.arm_from_config(None)
