"""End-to-end transport property tests.

The subsystem's core contract (ISSUE-3 acceptance): a full ShadowTutor
session whose server lives in another OS process, reached over the
shared-memory ring with the pickle-free wire format, produces
``RunStats`` *identical* to the in-process run.  Also covers the pipe
transport through the same registry wiring, and the serving pool over
remote sessions.
"""

import dataclasses

import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.runtime.session import SessionConfig, build_session, run_shadowtutor
from repro.serving.pool import SessionPool, SessionSpec
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

_HW = (32, 48)


def _config(transport, mode=DistillMode.PARTIAL):
    return SessionConfig(
        distill=DistillConfig(max_updates=4, threshold=0.7,
                              min_stride=4, max_stride=16, mode=mode),
        student_width=0.25,
        pretrain_steps=10,
        transport=transport,
    )


def _video(key="fixed-people"):
    return make_category_video(CATEGORY_BY_KEY[key], height=_HW[0], width=_HW[1])


def _run(transport, num_frames=20, **kw):
    return run_shadowtutor(_video(), num_frames, _config(transport, **kw), label="t")


class TestSessionOverRealTransports:
    def test_shm_session_identical_to_inproc(self):
        """The acceptance property: identical RunStats over shm."""
        inproc = _run("inproc")
        shm = _run("shm")
        assert shm.signature() == inproc.signature()

    def test_pipe_session_identical_to_inproc(self):
        inproc = _run("inproc")
        pipe = _run("pipe")
        assert pipe.signature() == inproc.signature()

    def test_full_distillation_over_shm(self):
        inproc = _run("inproc", num_frames=12, mode=DistillMode.FULL)
        shm = _run("shm", num_frames=12, mode=DistillMode.FULL)
        assert shm.signature() == inproc.signature()
        # Full-mode replies carry the whole student: paper-scale
        # accounting must reflect that on the remote path too.
        assert shm.key_frames[0].down_bytes == inproc.key_frames[0].down_bytes

    def test_remote_rejects_custom_teacher(self):
        from repro.models.teacher import OracleTeacher

        with pytest.raises(ValueError, match="teacher"):
            build_session(_config("shm"), _HW, teacher=OracleTeacher())

    def test_unknown_transport_raises(self):
        with pytest.raises(KeyError, match="available"):
            _run("carrier-pigeon", num_frames=4)

    def test_remote_server_process_is_reaped(self):
        """run_shadowtutor (the N = 1 pool) closes the spawned server."""
        client = build_session(_config("shm"), _HW)
        proc = client.server.process
        assert proc is not None and proc.is_alive()
        client.begin("t")
        video = _video()
        video.reset()
        for index, (frame, label) in enumerate(video.frames(6)):
            client.process_frame(frame, label, index)
        client.finish()
        client.server.close()
        assert not proc.is_alive()
        assert proc.exitcode == 0
        client.server.close()  # idempotent


class TestPoolOverRealTransports:
    def test_pooled_shm_sessions_identical_to_inproc_pool(self):
        """Two remote-server sessions in the pool behave exactly like
        the same two sessions pooled in-process."""

        def specs(transport):
            return [
                SessionSpec(video=_video(), num_frames=10,
                            config=_config(transport)),
                SessionSpec(video=_video("moving-animals"), num_frames=10,
                            config=dataclasses.replace(
                                _config(transport), student_width=0.3)),
            ]

        local = SessionPool(specs("inproc")).run()
        remote = SessionPool(specs("shm")).run()
        for a, b in zip(local.stats, remote.stats):
            assert a.signature(include_label=False) == b.signature(
                include_label=False
            )

    def test_pool_build_failure_reaps_spawned_servers(self):
        """If building a later session fails, servers already spawned
        for earlier sessions are shut down, not leaked."""
        from repro.models.teacher import OracleTeacher

        specs = [
            SessionSpec(video=_video(), num_frames=4, config=_config("shm")),
            SessionSpec(video=_video(), num_frames=4, config=_config("shm"),
                        teacher=OracleTeacher()),  # remote + custom teacher
        ]
        pool = SessionPool(specs)
        procs_before = __import__("multiprocessing").active_children()
        with pytest.raises(ValueError, match="teacher"):
            pool.run()
        # The first spec's server process must be gone.
        import time

        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leaked = [
                p for p in __import__("multiprocessing").active_children()
                if p not in procs_before
            ]
            if not leaked:
                break
            time.sleep(0.05)
        assert not leaked

    def test_pool_skips_shared_distillation_for_remote_sessions(self):
        """Remote servers keep their own trainer: the pool must not
        attach the in-process work cache to them."""
        specs = [
            SessionSpec(video=_video(), num_frames=8, config=_config("shm"))
            for _ in range(2)
        ]
        pool = SessionPool(specs, share_server_work=True)
        result = pool.run()
        assert result.counters.get("distill_calls", 0) == 0
        assert len(result.stats) == 2
