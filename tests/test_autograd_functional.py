"""Tests for log-softmax, softmax, cross-entropy and distillation loss."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F

from tests.helpers import assert_grad_close, numeric_gradient


class TestLogSoftmax:
    def test_normalisation(self, rng):
        x = Tensor(rng.normal(size=(2, 5, 3, 3)))
        logp = F.log_softmax(x, axis=1)
        np.testing.assert_allclose(
            np.exp(logp.data).sum(axis=1), np.ones((2, 3, 3)), rtol=1e-5
        )

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(1, 4, 2, 2)).astype(np.float32)
        a = F.log_softmax(Tensor(x), axis=1).data
        b = F.log_softmax(Tensor(x + 100.0), axis=1).data
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_numerical_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1001.0]], dtype=np.float32))
        out = F.log_softmax(x, axis=1)
        assert np.isfinite(out.data).all()

    def test_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 4, 2, 2)), requires_grad=True)
        w = rng.normal(size=(1, 4, 2, 2)).astype(np.float32)
        (F.log_softmax(x, axis=1) * Tensor(w)).sum().backward()

        def f():
            return float((F.log_softmax(Tensor(x.data), axis=1).data * w).sum())

        assert_grad_close(x.grad, numeric_gradient(x, f))


class TestSoftmax:
    def test_sums_to_one(self, rng):
        x = Tensor(rng.normal(size=(2, 6)))
        s = F.softmax(x, axis=1)
        np.testing.assert_allclose(s.data.sum(axis=1), np.ones(2), rtol=1e-5)

    def test_positive(self, rng):
        s = F.softmax(Tensor(rng.normal(size=(3, 4))), axis=1)
        assert (s.data > 0).all()


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = Tensor(rng.normal(size=(1, 3, 2, 2)))
        target = rng.integers(0, 3, size=(1, 2, 2))
        loss = F.cross_entropy(logits, target)
        logp = F.log_softmax(logits, axis=1).data
        manual = -np.mean(
            [logp[0, target[0, i, j], i, j] for i in range(2) for j in range(2)]
        )
        assert loss.item() == pytest.approx(manual, rel=1e-5)

    def test_perfect_prediction_low_loss(self):
        target = np.zeros((1, 2, 2), dtype=np.int64)
        logits_data = np.zeros((1, 2, 2, 2), dtype=np.float32)
        logits_data[0, 0] = 50.0  # huge margin for class 0
        loss = F.cross_entropy(Tensor(logits_data), target)
        assert loss.item() < 1e-4

    def test_weight_map_emphasis(self, rng):
        # Up-weighting the wrong pixels must increase the loss.
        logits = np.zeros((1, 2, 2, 2), dtype=np.float32)
        logits[0, 0, :, :] = 2.0  # predicts class 0 everywhere
        target = np.array([[[0, 1], [0, 0]]])  # one wrong pixel (class 1)
        flat = F.cross_entropy(Tensor(logits), target).item()
        weights = np.ones((1, 2, 2), dtype=np.float32)
        weights[0, 0, 1] = 5.0
        weighted = F.cross_entropy(Tensor(logits), target, weights).item()
        assert weighted > flat

    def test_gradient(self, rng):
        logits = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        target = rng.integers(0, 4, size=(2, 3, 3))
        wmap = np.where(target > 0, 5.0, 1.0).astype(np.float32)
        F.cross_entropy(logits, target, wmap).backward()

        def f():
            return float(F.cross_entropy(Tensor(logits.data), target, wmap).item())

        assert_grad_close(logits.grad, numeric_gradient(logits, f, eps=5e-3), rtol=5e-2)

    def test_gradient_channel_sums_zero(self, rng):
        # Softmax CE gradients sum to zero across the class axis.
        logits = Tensor(rng.normal(size=(1, 5, 4, 4)), requires_grad=True)
        target = rng.integers(0, 5, size=(1, 4, 4))
        F.cross_entropy(logits, target).backward()
        np.testing.assert_allclose(
            logits.grad.sum(axis=1), np.zeros((1, 4, 4)), atol=1e-5
        )

    def test_shape_mismatch_raises(self, rng):
        logits = Tensor(rng.normal(size=(1, 3, 2, 2)))
        with pytest.raises(ValueError):
            F.cross_entropy(logits, np.zeros((1, 3, 3), dtype=np.int64))


class TestDistillationLoss:
    def test_minimised_by_matching_teacher(self, rng):
        probs = rng.dirichlet(np.ones(3), size=(1, 2, 2)).transpose(0, 3, 1, 2)
        # Student logits = log teacher probs gives minimal cross-entropy.
        matching = F.distillation_loss(
            Tensor(np.log(probs).astype(np.float32)), probs
        ).item()
        other = F.distillation_loss(
            Tensor(rng.normal(size=probs.shape).astype(np.float32)), probs
        ).item()
        assert matching < other

    def test_shape_mismatch_raises(self, rng):
        logits = Tensor(rng.normal(size=(1, 3, 2, 2)))
        with pytest.raises(ValueError):
            F.distillation_loss(logits, np.ones((1, 4, 2, 2)))

    def test_gradient_flows(self, rng):
        logits = Tensor(rng.normal(size=(1, 3, 2, 2)), requires_grad=True)
        probs = rng.dirichlet(np.ones(3), size=(1, 2, 2)).transpose(0, 3, 1, 2)
        F.distillation_loss(logits, probs).backward()
        assert logits.grad is not None
        assert np.isfinite(logits.grad).all()
