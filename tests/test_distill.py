"""Tests for Algorithm 1 (student training) and the distill config."""

import numpy as np
import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.distill.trainer import StudentTrainer
from repro.models.student import StudentNet
from repro.segmentation.metrics import mean_iou
from repro.video.generator import SyntheticVideo, VideoConfig


@pytest.fixture
def frame_and_label():
    video = SyntheticVideo(VideoConfig(seed=9, height=32, width=48,
                                       num_objects=2, class_pool=(1,)))
    frame, label = next(iter(video.frames(1)))
    return frame, label


class TestDistillConfig:
    def test_paper_defaults(self):
        cfg = DistillConfig()
        assert cfg.threshold == 0.8
        assert cfg.max_updates == 8
        assert cfg.min_stride == 8
        assert cfg.max_stride == 64
        assert cfg.mode is DistillMode.PARTIAL
        assert cfg.lr == 0.01

    @pytest.mark.parametrize("kwargs", [
        {"threshold": 0.0},
        {"threshold": 1.0},
        {"max_updates": -1},
        {"min_stride": 0},
        {"min_stride": 10, "max_stride": 5},
        {"lr": 0.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DistillConfig(**kwargs)

    def test_frozen_dataclass(self):
        cfg = DistillConfig()
        with pytest.raises(Exception):
            cfg.threshold = 0.5


class TestStudentTrainer:
    def test_partial_mode_freezes_front(self):
        student = StudentNet(width=0.25)
        trainer = StudentTrainer(student, DistillConfig(mode=DistillMode.PARTIAL))
        assert 0 < trainer.trainable_fraction < 0.5
        assert student.in1.weight.frozen

    def test_full_mode_trains_everything(self):
        student = StudentNet(width=0.25)
        trainer = StudentTrainer(student, DistillConfig(mode=DistillMode.FULL))
        assert trainer.trainable_fraction == 1.0
        assert not student.in1.weight.frozen

    def test_training_improves_metric(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=20, threshold=0.95)
        )
        result = trainer.train(frame, label)
        assert result.metric >= result.initial_metric
        assert result.steps > 0

    def test_skips_training_above_threshold(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        # Threshold below the untrained metric: loop must not run.
        trainer = StudentTrainer(student, DistillConfig(threshold=0.01))
        before = student.state_dict()
        result = trainer.train(frame, label)
        assert result.steps == 0
        assert result.metric == result.initial_metric
        after = student.state_dict()
        for k in before:
            np.testing.assert_array_equal(before[k], after[k])

    def test_respects_max_updates(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=3, threshold=0.99)
        )
        result = trainer.train(frame, label)
        assert result.steps == 3
        assert len(result.losses) == 3

    def test_early_exit_on_threshold(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=50, threshold=0.6)
        )
        result = trainer.train(frame, label)
        assert result.steps < 50
        assert result.metric > 0.6

    def test_best_checkpoint_returned(self, frame_and_label):
        # The student left in the trainer must achieve the reported
        # best metric (Algorithm 1 returns best_student).
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=12, threshold=0.9)
        )
        result = trainer.train(frame, label)
        student.eval()
        final = mean_iou(student.predict(frame), label)
        assert final == pytest.approx(result.metric, abs=1e-6)

    def test_max_updates_zero_never_trains(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(student, DistillConfig(max_updates=0))
        result = trainer.train(frame, label)
        assert result.steps == 0

    def test_repeated_training_converges(self, frame_and_label):
        # Distilling the same frame repeatedly must reach the threshold.
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=8, threshold=0.8)
        )
        metrics = [trainer.train(frame, label).metric for _ in range(5)]
        assert metrics[-1] > 0.8 or metrics[-1] >= max(metrics[:-1]) - 1e-6

    def test_full_distillation_also_learns(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.25, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(mode=DistillMode.FULL, max_updates=20,
                                   threshold=0.95)
        )
        result = trainer.train(frame, label)
        assert result.metric > result.initial_metric
