"""Doc-sync test: docs/PROTOCOL.md must match wire.py, byte for byte.

The protocol spec is normative and test-enforced: every table marked
with a ``<!-- table:NAME -->`` comment is parsed here and checked
against the implementation's actual magic numbers, header layouts,
kind codes, blueprint fields and reason codes.  Change either side
without the other and this test fails — the documentation cannot
silently rot (ISSUE 5).
"""

import pathlib
import re
import struct

import numpy as np
import pytest

from repro.transport import wire

DOC = pathlib.Path(__file__).resolve().parent.parent / "docs" / "PROTOCOL.md"


def _tables():
    """Parse every marked markdown table into {name: [row cells...]}."""
    text = DOC.read_text()
    tables = {}
    for match in re.finditer(r"<!-- table:([a-z0-9-]+) -->", text):
        rest = text[match.end():]
        rows = []
        started = False
        for line in rest.splitlines():
            line = line.strip()
            if not line:
                if started:
                    break
                continue
            if not line.startswith("|"):
                if started:
                    break
                continue
            started = True
            cells = [c.strip() for c in line.strip("|").split("|")]
            if all(set(c) <= {"-", ":", " "} for c in cells):
                continue  # the header separator row
            rows.append(cells)
        tables[match.group(1)] = rows[1:]  # drop the header row
    return tables


TABLES = _tables()


def _code(cell: str) -> str:
    """Strip markdown backticks from a table cell."""
    return cell.strip("`")


def _header_offsets(fmt: str):
    """(offset, size) per field of a struct format, in order."""
    fields = re.findall(r"\d*[a-zA-Z]", fmt.lstrip("<"))
    offsets, offset = [], 0
    for field in fields:
        size = struct.calcsize("<" + field)
        offsets.append((offset, size))
        offset += size
    return offsets


class TestCoreConstants:
    def rows(self):
        return {_code(r[0]): _code(r[1]) for r in TABLES["constants"]}

    def test_doc_has_all_marked_tables(self):
        assert set(TABLES) == {
            "constants", "header-v3", "header-v1", "kinds",
            "admit-fields", "reject-codes",
        }

    def test_magic(self):
        assert self.rows()["MAGIC"] == f'"{wire.MAGIC.decode()}"'

    def test_version(self):
        assert int(self.rows()["VERSION"]) == wire.VERSION

    def test_header_nbytes(self):
        assert int(self.rows()["HEADER_NBYTES"]) == wire.HEADER_NBYTES

    def test_max_session(self):
        assert int(self.rows()["MAX_SESSION"]) == wire.MAX_SESSION

    def test_header_struct_format(self):
        assert self.rows()["header struct"] == wire._HEADER.format


class TestHeaderLayouts:
    def _check(self, table_name, fmt, field_names):
        rows = TABLES[table_name]
        assert [_code(r[2]) for r in rows] == field_names
        expected = _header_offsets(fmt)
        for row, (offset, size) in zip(rows, expected):
            assert int(row[0]) == offset, f"{table_name}: {row[2]} offset"
            assert int(row[1]) == size, f"{table_name}: {row[2]} size"
        assert sum(s for _, s in expected) == struct.calcsize(fmt)

    def test_v3_layout_matches_implementation(self):
        self._check(
            "header-v3", wire._HEADER.format,
            ["magic", "version", "kind", "session", "total_len"],
        )
        assert struct.calcsize(wire._HEADER.format) == wire.HEADER_NBYTES

    def test_v1_layout_is_the_recorded_history(self):
        self._check(
            "header-v1", "<2sBBQ",
            ["magic", "version", "kind", "total_len"],
        )
        assert struct.calcsize("<2sBBQ") == 12


class TestKindCodes:
    def rows(self):
        return {
            _code(r[1]): (int(r[0]), r[2]) for r in TABLES["kinds"]
        }

    def test_every_documented_kind_matches_the_code(self):
        rows = self.rows()
        for name, (code, _) in rows.items():
            assert getattr(wire, f"KIND_{name}") == code, name

    def test_kind_space_is_exactly_the_documented_one(self):
        doc_codes = {code for code, _ in self.rows().values()}
        assert doc_codes == set(wire._KINDS)
        impl_kinds = {
            n for n in dir(wire) if n.startswith("KIND_")
        }
        assert impl_kinds == {f"KIND_{name}" for name in self.rows()}

    def test_since_column_matches_the_v2_kind_set(self):
        for name, (code, since) in self.rows().items():
            if since in ("v1", "v2"):
                assert code in wire._V2_KINDS, name
            else:
                assert since == "v3" and code not in wire._V2_KINDS, name


class TestAdmitBlueprintFields:
    def rows(self):
        return {_code(r[0]): _code(r[1]) for r in TABLES["admit-fields"]}

    def test_field_set_and_dtypes_match_the_wire_encoding(self):
        documented = self.rows()
        admit = wire.Admit(
            student_width=0.5, student_seed=0, pretrain_steps=1,
            frame_h=2, frame_w=3, mode="partial", threshold=0.5,
            max_updates=1, min_stride=1, max_stride=2, lr=0.1,
            reset_optimizer_state=True,
        )
        state = admit.to_state()
        assert set(documented) == set(state)
        for name, value in state.items():
            assert np.asarray(value).dtype.name == documented[name], name

    def test_mode_codes_match(self):
        assert wire.Admit._MODES == ("partial", "full")


class TestRejectCodes:
    def test_reason_table_matches_implementation_exactly(self):
        documented = {
            int(r[0]): _code(r[1]) for r in TABLES["reject-codes"]
        }
        assert documented == wire.REJECT_REASONS


class TestDocExamplesAreHonest:
    """The spec's claims that are cheap to execute, executed."""

    def test_empty_body_kinds_are_exactly_header_nbytes(self):
        for msg in (None, wire.Hello(1), wire.Accept(1), wire.Bye(1)):
            assert wire.encoded_nbytes(msg) == wire.HEADER_NBYTES

    def test_admit_body_is_a_state_body(self):
        admit = wire.Admit(
            student_width=0.5, student_seed=0, pretrain_steps=1,
            frame_h=2, frame_w=3, mode="full", threshold=0.5,
            max_updates=1, min_stride=1, max_stride=2, lr=0.1,
            reset_optimizer_state=False,
        )
        as_admit = wire.encode(admit)
        as_state = wire.encode(dict(admit.to_state()))
        # Identical bytes past the kind byte: same body framing.
        assert as_admit[wire.HEADER_NBYTES:] == as_state[wire.HEADER_NBYTES:]

    def test_reject_body_layout(self):
        # v5 body head: u16 code | u16 detail_len | u8 flag | u64 hint
        #             | u8 shard flag | u16 shard.
        head = struct.Struct("<HHBQBH")
        reject = wire.Reject(5, wire.REJECT_OVERLOADED, "dry", retry_after=17)
        body = wire.encode(reject)[wire.HEADER_NBYTES:]
        (code, detail_len, has_retry, retry_after,
         has_shard, shard) = head.unpack_from(body, 0)
        assert code == wire.REJECT_OVERLOADED
        assert (has_retry, retry_after) == (1, 17)
        assert (has_shard, shard) == (0, 0)
        assert body[head.size : head.size + detail_len].decode() == "dry"
        # Without a hint the flag and field MUST both encode as zero.
        bare = wire.encode(wire.Reject(5, wire.REJECT_CAPACITY, "full"))
        body = bare[wire.HEADER_NBYTES:]
        (code, detail_len, has_retry, retry_after,
         has_shard, shard) = head.unpack_from(body, 0)
        assert code == wire.REJECT_CAPACITY
        assert (has_retry, retry_after) == (0, 0)
        assert (has_shard, shard) == (0, 0)
        assert body[head.size : head.size + detail_len].decode() == "full"
        # §4.6/§5.1: a redirect MUST carry has_shard = 1 + the target.
        routed = wire.encode(wire.Reject(0, wire.REJECT_REDIRECT,
                                         "belongs on shard 3", shard=3))
        body = routed[wire.HEADER_NBYTES:]
        (code, detail_len, has_retry, retry_after,
         has_shard, shard) = head.unpack_from(body, 0)
        assert code == wire.REJECT_REDIRECT
        assert (has_shard, shard) == (1, 3)

    def test_v4_reject_still_decodes_without_a_shard(self):
        """§7: a v4 REJECT body (no shard tail) decodes with
        ``shard`` None — the historical layout stays live."""
        detail = "dry".encode()
        body = wire._REJECT_HEAD_V4.pack(
            wire.REJECT_OVERLOADED, len(detail), 1, 17
        )
        total = wire.HEADER_NBYTES + len(body) + len(detail)
        buf = bytearray(total)
        wire._HEADER.pack_into(buf, 0, wire.MAGIC, 4, wire.KIND_REJECT,
                               9, total)
        buf[wire.HEADER_NBYTES:] = body + detail
        session, out = wire.decode_tagged(buf)
        assert session == 9
        assert out == wire.Reject(9, wire.REJECT_OVERLOADED, "dry", 17, None)
        assert out.shard is None

    def test_retryable_codes_are_exactly_3_and_6(self):
        """§4.6: capacity and overloaded are the retryable refusals."""
        from repro.serving.runtime import AdmissionError

        for code, name in wire.REJECT_REASONS.items():
            exc = AdmissionError(wire.Reject(0, code, ""))
            assert exc.retryable == (name in ("capacity", "overloaded")), name
