"""Tests for the scene graph: cameras, object motion, determinism."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.video.scene import Camera, CameraModel, Scene, SceneObject


def make_object(rng, class_id=1, radii=(4.0, 4.0)):
    return SceneObject(
        class_id=class_id,
        center=np.array([16.0, 24.0]),
        velocity=np.array([0.5, -0.3]),
        radii=radii,
        texture_phase=0.0,
        texture_freq=0.5,
        texture_drift=0.02,
        brightness=0.9,
    )


class TestCamera:
    def test_fixed_never_moves(self, rng):
        cam = Camera(model=CameraModel.FIXED)
        for _ in range(50):
            cam.step(rng)
        assert cam.offset == (0.0, 0.0)

    def test_moving_pans(self, rng):
        cam = Camera(model=CameraModel.MOVING, pan_speed=1.0)
        for _ in range(50):
            cam.step(rng)
        oy, ox = cam.offset
        assert np.hypot(oy, ox) > 5.0

    def test_egocentric_jitters(self):
        # Two egocentric cameras with the same pan but different jitter
        # draw different offsets.
        rng1, rng2 = np.random.default_rng(1), np.random.default_rng(2)
        a = Camera(model=CameraModel.EGOCENTRIC)
        b = Camera(model=CameraModel.EGOCENTRIC)
        a.step(rng1)
        b.step(rng2)
        assert a.offset != b.offset

    def test_enum_values(self):
        assert CameraModel("fixed") is CameraModel.FIXED
        assert {m.value for m in CameraModel} == {"fixed", "moving", "egocentric"}


class TestSceneObject:
    def test_moves_by_velocity(self, rng):
        obj = make_object(rng)
        start = obj.center.copy()
        obj.step(rng, bounds=(0.0, 64.0, 0.0, 96.0))
        moved = obj.center - start
        np.testing.assert_allclose(moved[:2], [0.5, -0.3], atol=0.1)

    def test_speed_scale(self, rng):
        a, b = make_object(rng), make_object(rng)
        sa, sb = a.center.copy(), b.center.copy()
        a.step(rng, (0.0, 64.0, 0.0, 96.0), speed_scale=1.0)
        b.step(np.random.default_rng(12345), (0.0, 64.0, 0.0, 96.0), speed_scale=4.0)
        assert np.linalg.norm(b.center - sb) > 2 * np.linalg.norm(a.center - sa)

    def test_bounce_keeps_center_inside(self, rng):
        obj = make_object(rng)
        obj.velocity = np.array([5.0, 5.0])
        for _ in range(200):
            obj.step(rng, bounds=(4.0, 60.0, 4.0, 92.0))
            assert 4.0 <= obj.center[0] <= 60.0
            assert 4.0 <= obj.center[1] <= 92.0

    def test_degenerate_bounds_pins_midpoint(self, rng):
        obj = make_object(rng)
        obj.step(rng, bounds=(10.0, 10.0, 0.0, 96.0))
        assert obj.center[0] == pytest.approx(10.0)

    def test_texture_drifts(self, rng):
        obj = make_object(rng)
        p0 = obj.texture_phase
        obj.step(rng, (0.0, 64.0, 0.0, 96.0))
        assert obj.texture_phase > p0

    @given(
        vy=st.floats(-8, 8, allow_nan=False),
        vx=st.floats(-8, 8, allow_nan=False),
        steps=st.integers(1, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_bounce_invariant_property(self, vy, vx, steps):
        rng = np.random.default_rng(0)
        obj = make_object(rng)
        obj.velocity = np.array([vy, vx])
        for _ in range(steps):
            obj.step(rng, bounds=(2.0, 62.0, 2.0, 94.0))
            assert 2.0 <= obj.center[0] <= 62.0
            assert 2.0 <= obj.center[1] <= 94.0


class TestScene:
    def test_step_advances_everything(self, rng):
        objects = [make_object(rng)]
        cam = Camera(model=CameraModel.MOVING)
        scene = Scene(objects, cam, world_size=(64, 96), rng=rng,
                      background_drift=0.01)
        scene.step()
        assert scene.frame_index == 1
        assert scene.background_phase == pytest.approx(0.01)

    def test_objects_track_moving_viewport(self, rng):
        # After many steps of a panning camera, the object must still be
        # inside the viewport (cameraman-follows-subject invariant).
        obj = make_object(rng)
        cam = Camera(model=CameraModel.MOVING, pan_speed=1.5)
        scene = Scene([obj], cam, world_size=(64, 96), rng=rng)
        for _ in range(300):
            scene.step()
        oy, ox = cam.offset
        assert oy <= obj.center[0] <= oy + 64
        assert ox <= obj.center[1] <= ox + 96
