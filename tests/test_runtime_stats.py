"""Tests for RunStats aggregation."""

import numpy as np
import pytest

from repro.runtime.stats import FrameRecord, KeyFrameRecord, RunStats


def make_stats(num_frames=10, num_key=2, total_time=2.0):
    stats = RunStats(label="test")
    for i in range(num_frames):
        stats.frames.append(
            FrameRecord(index=i, is_key=i < num_key, miou=0.5 + 0.05 * i,
                        sim_time=0.2 * (i + 1), stride=8.0)
        )
    for i in range(num_key):
        stats.key_frames.append(
            KeyFrameRecord(index=i, metric=0.8, initial_metric=0.5,
                           steps=4, up_bytes=1000, down_bytes=500)
        )
        stats.total_up_bytes += 1000
        stats.total_down_bytes += 500
    stats.total_time_s = total_time
    return stats


class TestRunStats:
    def test_counts(self):
        stats = make_stats()
        assert stats.num_frames == 10
        assert stats.num_key_frames == 2

    def test_throughput(self):
        stats = make_stats(num_frames=10, total_time=2.0)
        assert stats.throughput_fps == pytest.approx(5.0)

    def test_key_frame_ratio(self):
        assert make_stats().key_frame_ratio == pytest.approx(0.2)

    def test_mean_miou(self):
        stats = make_stats()
        expected = np.mean([0.5 + 0.05 * i for i in range(10)])
        assert stats.mean_miou == pytest.approx(expected)

    def test_traffic_mbps(self):
        stats = make_stats(total_time=2.0)
        # 3000 bytes over 2 s
        assert stats.network_traffic_mbps == pytest.approx(3000 * 8 / 1e6 / 2)

    def test_mean_distill_steps_skips_zero_step_keyframes(self):
        stats = make_stats()
        stats.key_frames.append(
            KeyFrameRecord(index=9, metric=0.9, initial_metric=0.9,
                           steps=0, up_bytes=1000, down_bytes=500)
        )
        assert stats.mean_distill_steps == pytest.approx(4.0)

    def test_bytes_per_key_frame(self):
        per_kf = make_stats().bytes_per_key_frame
        mb = 1_000_000
        assert per_kf["to_server"] == pytest.approx(1000 / mb)
        assert per_kf["to_client"] == pytest.approx(500 / mb)
        assert per_kf["total"] == pytest.approx(1500 / mb)

    def test_empty_stats_safe(self):
        stats = RunStats()
        assert stats.throughput_fps == 0.0
        assert stats.key_frame_ratio == 0.0
        assert stats.mean_miou == 0.0
        assert stats.mean_distill_steps == 0.0
        assert stats.bytes_per_key_frame["total"] == 0.0

    def test_summary_keys(self):
        summary = make_stats().summary()
        for key in ("frames", "key_frames", "throughput_fps",
                    "key_frame_ratio_pct", "mean_miou_pct", "traffic_mbps"):
            assert key in summary
