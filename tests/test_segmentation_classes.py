"""Tests for the LVS class palette."""

import pytest

from repro.segmentation.classes import (
    BACKGROUND,
    CLASS_INDEX,
    LVS_CLASSES,
    NUM_CLASSES,
    class_name,
)


class TestPalette:
    def test_nine_classes_total(self):
        # 8 LVS object classes + background (student's out channels).
        assert NUM_CLASSES == 9

    def test_background_is_zero(self):
        assert BACKGROUND == 0
        assert LVS_CLASSES[0] == "background"

    def test_paper_class_set(self):
        expected = {"person", "bicycle", "automobile", "bird", "dog",
                    "horse", "elephant", "giraffe"}
        assert set(LVS_CLASSES[1:]) == expected

    def test_index_lookup_consistent(self):
        for i, name in enumerate(LVS_CLASSES):
            assert CLASS_INDEX[name] == i

    def test_class_name_roundtrip(self):
        for i in range(NUM_CLASSES):
            assert CLASS_INDEX[class_name(i)] == i

    @pytest.mark.parametrize("bad", [-1, 9, 100])
    def test_class_name_range_checked(self, bad):
        with pytest.raises(ValueError):
            class_name(bad)
