"""Tests for the section-7 teacher extensions: ensemble distillation and
data distillation."""

import numpy as np
import pytest

from repro.distill.ensembles import (
    DataDistillationTeacher,
    EnsembleTeacher,
    HorizontalFlip,
    IdentityTransform,
    Shift,
    _majority_vote,
)
from repro.models.teacher import OracleTeacher


class ConstantTeacher:
    """Teacher that predicts a fixed class everywhere."""

    def __init__(self, class_id: int) -> None:
        self.class_id = class_id

    def infer(self, frame, label=None):
        return np.full(frame.shape[-2:], self.class_id, dtype=np.int64)


class TestMajorityVote:
    def test_unanimous(self):
        preds = [np.ones((4, 4), dtype=np.int64)] * 3
        np.testing.assert_array_equal(_majority_vote(preds, 3), preds[0])

    def test_majority_wins(self):
        a = np.zeros((2, 2), dtype=np.int64)
        b = np.ones((2, 2), dtype=np.int64)
        out = _majority_vote([b, b, a], 2)
        np.testing.assert_array_equal(out, b)

    def test_per_pixel_independence(self):
        a = np.array([[0, 1]], dtype=np.int64)
        b = np.array([[0, 0]], dtype=np.int64)
        c = np.array([[1, 1]], dtype=np.int64)
        out = _majority_vote([a, b, c], 2)
        np.testing.assert_array_equal(out, [[0, 1]])


class TestEnsembleTeacher:
    def test_single_teacher_passthrough(self, rng):
        label = rng.integers(0, 3, size=(6, 6))
        ensemble = EnsembleTeacher([OracleTeacher()])
        out = ensemble.infer(np.zeros((3, 6, 6)), label)
        np.testing.assert_array_equal(out, label)

    def test_majority_overrides_outlier(self):
        ensemble = EnsembleTeacher(
            [ConstantTeacher(2), ConstantTeacher(2), ConstantTeacher(5)]
        )
        out = ensemble.infer(np.zeros((3, 4, 4)))
        np.testing.assert_array_equal(out, np.full((4, 4), 2))

    def test_empty_ensemble_rejected(self):
        with pytest.raises(ValueError):
            EnsembleTeacher([])


class TestTransforms:
    def test_identity_roundtrip(self, rng):
        t = IdentityTransform()
        frame = rng.normal(size=(3, 4, 4))
        np.testing.assert_array_equal(t.apply(frame), frame)

    def test_flip_involution(self, rng):
        t = HorizontalFlip()
        label = rng.integers(0, 4, size=(5, 6))
        np.testing.assert_array_equal(t.invert_label(t.apply_label(label)), label)

    def test_flip_applies_to_last_axis(self):
        frame = np.arange(6, dtype=np.float32).reshape(1, 2, 3)
        flipped = HorizontalFlip().apply(frame)
        np.testing.assert_allclose(flipped[0, 0], [2, 1, 0])

    @pytest.mark.parametrize("dy,dx", [(1, 0), (0, 1), (-1, 0), (0, -2)])
    def test_shift_inverse_matches_interior(self, rng, dy, dx):
        t = Shift(dy, dx)
        label = rng.integers(1, 4, size=(8, 8))
        back = t.invert_label(t.apply_label(label))
        # Interior pixels survive the round trip (edges are zero-padded).
        assert (back[2:-2, 2:-2] == label[2:-2, 2:-2]).all()

    def test_shift_pads_with_background(self):
        label = np.ones((4, 4), dtype=np.int64)
        shifted = Shift(1, 0).apply_label(label)
        assert (shifted[0, :] == 0).all()


class TestDataDistillation:
    def test_oracle_consensus_is_exact_in_interior(self, rng):
        # With an exact oracle, every transformed view votes for the
        # true label, so the merged pseudo-label matches it (away from
        # shift padding).
        label = np.zeros((12, 12), dtype=np.int64)
        label[4:8, 4:8] = 3
        teacher = DataDistillationTeacher(OracleTeacher())
        out = teacher.infer(np.zeros((3, 12, 12)), label)
        np.testing.assert_array_equal(out[2:-2, 2:-2], label[2:-2, 2:-2])

    def test_noisy_oracle_merged_stays_close_to_truth(self, rng):
        # A noisy oracle flips boundary pixels independently per view;
        # the merged pseudo-label must remain a close match to the
        # clean label (boundary noise affects only a thin band).
        from repro.segmentation.metrics import mean_iou

        label = np.zeros((16, 16), dtype=np.int64)
        label[5:11, 5:11] = 2
        noisy = OracleTeacher(boundary_noise=0.5, seed=0)
        merged = DataDistillationTeacher(noisy).infer(
            np.zeros((3, 16, 16)), label
        )
        assert mean_iou(merged, label) > 0.6
        # Interior pixels are never corrupted by boundary noise.
        np.testing.assert_array_equal(merged[7:9, 7:9], label[7:9, 7:9])

    def test_requires_transforms(self):
        with pytest.raises(ValueError):
            DataDistillationTeacher(OracleTeacher(), transforms=[])

    def test_works_in_server(self, rng):
        from repro.distill.config import DistillConfig
        from repro.models.student import StudentNet
        from repro.runtime.server import Server
        from repro.video.generator import SyntheticVideo, VideoConfig

        video = SyntheticVideo(VideoConfig(seed=3, height=32, width=48,
                                           num_objects=2, class_pool=(1,)))
        frame, label = next(iter(video.frames(1)))
        server = Server(
            StudentNet(width=0.25), DataDistillationTeacher(OracleTeacher()),
            DistillConfig(max_updates=2),
        )
        reply, _ = server.handle_key_frame(frame, label)
        assert reply.update
