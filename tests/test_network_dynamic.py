"""Tests for the time-varying bandwidth model and the client's
robustness to in-run bandwidth drops (paper section 6.4)."""

import numpy as np
import pytest

from repro.network.dynamic import DynamicNetworkModel, step_drop
from repro.network.model import NetworkModel


class TestScheduleValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DynamicNetworkModel([])

    def test_must_start_at_zero(self):
        with pytest.raises(ValueError):
            DynamicNetworkModel([(1.0, 80.0)])

    def test_times_strictly_increasing(self):
        with pytest.raises(ValueError):
            DynamicNetworkModel([(0.0, 80.0), (5.0, 40.0), (5.0, 20.0)])

    def test_positive_bandwidths(self):
        with pytest.raises(ValueError):
            DynamicNetworkModel([(0.0, 0.0)])

    def test_step_drop_recovery_order(self):
        with pytest.raises(ValueError):
            step_drop(80, 8, drop_at_s=10.0, recover_at_s=5.0)


class TestBandwidthLookup:
    def test_segments(self):
        net = DynamicNetworkModel([(0.0, 80.0), (10.0, 8.0), (20.0, 40.0)])
        assert net.bandwidth_at(0.0) == 80.0
        assert net.bandwidth_at(9.99) == 80.0
        assert net.bandwidth_at(10.0) == 8.0
        assert net.bandwidth_at(25.0) == 40.0

    def test_at_snapshot(self):
        net = step_drop(80, 8, drop_at_s=10.0)
        snap = net.at(15.0)
        assert isinstance(snap, NetworkModel)
        assert snap.bandwidth_mbps == 8.0


class TestTransferTime:
    def test_constant_segment_matches_static(self):
        dyn = DynamicNetworkModel([(0.0, 80.0)], base_latency_s=0.0)
        static = NetworkModel(bandwidth_mbps=80.0, base_latency_s=0.0)
        nbytes = 3_000_000
        assert dyn.transfer_time(nbytes, 0.0) == pytest.approx(
            static.transfer_time(nbytes)
        )

    def test_transfer_spanning_a_drop_takes_longer(self):
        # 10 Mbit payload; 1 s at 80 Mbps sends 80 Mbit... use a drop
        # midway: 24 Mbit at 80 Mbps from t=0, drop to 8 Mbps at t=0.1:
        # 8 Mbit sent in the first 0.1 s, remaining 16 Mbit at 8 Mbps
        # takes 2 s -> total 2.1 s.
        net = DynamicNetworkModel([(0.0, 80.0), (0.1, 8.0)], base_latency_s=0.0)
        t = net.transfer_time(3_000_000, 0.0)  # 24 Mbit
        assert t == pytest.approx(0.1 + 16 / 8, rel=1e-6)

    def test_transfer_after_recovery_fast_again(self):
        net = step_drop(80, 8, drop_at_s=1.0, recover_at_s=2.0,
                        base_latency_s=0.0)
        before = net.transfer_time(1_000_000, 0.0)
        after = net.transfer_time(1_000_000, 3.0)
        assert after == pytest.approx(before)

    def test_round_trip_sequencing(self):
        net = DynamicNetworkModel([(0.0, 80.0)], base_latency_s=0.0)
        rt = net.round_trip_time(1_000_000, 500_000, now=0.0)
        assert rt == pytest.approx((8 + 4) / 80.0)


class TestClientRidesThroughDip:
    def _run(self, network):
        from repro.distill.config import DistillConfig
        from repro.models.student import StudentNet
        from repro.models.teacher import OracleTeacher
        from repro.runtime.client import Client
        from repro.runtime.server import Server
        from repro.video.generator import SyntheticVideo, VideoConfig

        cfg = DistillConfig(min_stride=8, max_stride=32, max_updates=2)
        server = Server(StudentNet(width=0.25, seed=0), OracleTeacher(), cfg)
        client = Client(StudentNet(width=0.25, seed=0), server, cfg,
                        network=network)
        video = SyntheticVideo(VideoConfig(seed=1, height=32, width=48,
                                           num_objects=2, class_pool=(1,)))
        return client.run(video.frames(60))

    def test_short_dip_hidden_by_async(self):
        # A 3-second dip to 30 Mbps: the key-frame round trip (~0.86 s)
        # still fits inside MIN_STRIDE x t_si (~1.14 s), so asynchronous
        # inference hides the dip almost completely.
        steady = self._run(NetworkModel(bandwidth_mbps=80.0))
        dipped = self._run(step_drop(80, 30, drop_at_s=2.0, recover_at_s=5.0))
        assert dipped.throughput_fps > 0.95 * steady.throughput_fps

    def test_deep_dip_costs_wait_time(self):
        # Dropping to 1 Mbps makes key-frame round trips exceed the
        # MIN_STRIDE inference budget: the client must block.
        dipped = self._run(step_drop(80, 1, drop_at_s=1.0))
        steady = self._run(NetworkModel(bandwidth_mbps=80.0))
        assert dipped.wait_time_s > steady.wait_time_s
        assert dipped.throughput_fps < steady.throughput_fps

    def test_naive_suffers_more_than_shadowtutor(self):
        # A sustained congestion event (drop with no recovery) exposes
        # both schemes to the same conditions for the rest of the run:
        # naive's relative throughput loss must be the larger one
        # (section 6.4's conclusion).
        from repro.models.teacher import OracleTeacher
        from repro.runtime.naive import NaiveOffloadClient
        from repro.video.generator import SyntheticVideo, VideoConfig

        dip = step_drop(80, 8, drop_at_s=1.0)
        shadow = self._run(dip)
        video = SyntheticVideo(VideoConfig(seed=1, height=32, width=48))
        naive = NaiveOffloadClient(OracleTeacher(), network=dip).run(
            video.frames(60)
        )
        shadow_steady = self._run(NetworkModel(bandwidth_mbps=80.0))
        naive_steady = NaiveOffloadClient(
            OracleTeacher(), network=NetworkModel(bandwidth_mbps=80.0)
        ).run(SyntheticVideo(VideoConfig(seed=1, height=32, width=48)).frames(60))
        shadow_loss = 1 - shadow.throughput_fps / shadow_steady.throughput_fps
        naive_loss = 1 - naive.throughput_fps / naive_steady.throughput_fps
        assert shadow_loss < naive_loss
