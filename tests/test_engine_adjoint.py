"""Property tests: the generated adjoint is bitwise autograd.

The adjoint plan (:mod:`repro.engine.adjoint`) claims more than
closeness: for any traced geometry, width, and LVS weight map, the
gradients it installs are *bit-identical* to the define-by-run loop's,
because its schedule replays autograd's reversed depth-first postorder
exactly.  These tests check the property over randomized
configurations, and pin the schedule itself for the case that forced
the old escape hatch — the Figure-3b skip tensors, whose **three**
gradient consumers make float32 accumulation order observable.

The s1 skip (SB1's output) is consumed by ``sb2.bn``, ``sb2.project``
and ``concat([s5, s1])``; s2 likewise by ``sb3.bn``, ``sb3.project``
and ``concat([s4, s2])``.  Autograd's traversal runs those closures as
concat, then bn, then project — *not* the reversed record order (which
would put project before bn, the last-ulp difference that kept full
mode off the engine).  The pin test asserts both the relative order and
that the schedule genuinely differs from reversed lowering order.
"""

import numpy as np
import pytest

from repro import engine
from repro.autograd.tensor import Tensor
from repro.engine.adjoint import (
    BatchNormVjpStep,
    ConcatVjpStep,
    ConvVjpStep,
    CrossEntropyVjpStep,
)
from repro.autograd.functional import cross_entropy
from repro.models.student import StudentNet, partial_freeze
from repro.segmentation.losses import lvs_weight_map


def _frame_and_target(seed: int, h: int, w: int):
    rng = np.random.default_rng(seed)
    x4 = rng.uniform(0.0, 1.0, (1, 3, h, w)).astype(np.float32)
    target = rng.integers(0, 9, size=(1, h, w))
    return x4, target


def _autograd_grads(student, x4, target, weight_map):
    # Call functional.cross_entropy directly (not weighted_cross_entropy,
    # which substitutes the LVS map for None): the plan's None path means
    # genuinely unweighted, and the reference must mean the same thing.
    student.train()
    with engine.disabled():
        loss = cross_entropy(student(Tensor(x4)), target, weight_map)
        loss.backward()
    return loss.item(), {n: p.grad for n, p in student.named_parameters()}


def _adjoint_grads(student, x4, target, weight_map):
    plan = student.engine_plan("train_full", (tuple(x4.shape),))
    assert plan is not None, "full train step must compile"
    student.train()
    loss = plan.run((x4,), target, weight_map)
    return loss, {n: p.grad for n, p in student.named_parameters()}


class TestAdjointBitwiseProperty:
    @pytest.mark.parametrize(
        "seed,h,w,width,use_wm",
        [
            (0, 32, 48, 0.5, True),    # canonical bench geometry
            (1, 36, 44, 0.5, False),   # odd (non-power-of-two) geometry
            (2, 32, 32, 1.0, True),    # paper-sized width
            (3, 24, 40, 0.75, True),   # width that rounds channels oddly
            (4, 48, 36, 1.0, False),
        ],
    )
    def test_full_mode_grads_bitwise(self, seed, h, w, width, use_wm):
        x4, target = _frame_and_target(seed, h, w)
        weight_map = lvs_weight_map(target) if use_wm else None

        ref_student = StudentNet(width=width, seed=seed)
        ref_student.unfreeze()
        ref_loss, ref_grads = _autograd_grads(ref_student, x4, target, weight_map)

        got_student = StudentNet(width=width, seed=seed)
        got_student.unfreeze()
        got_loss, got_grads = _adjoint_grads(got_student, x4, target, weight_map)

        assert got_loss == ref_loss
        assert set(got_grads) == set(ref_grads)
        for name, ref in ref_grads.items():
            if ref is None:
                assert got_grads[name] is None, name
            else:
                np.testing.assert_array_equal(got_grads[name], ref, err_msg=name)

    def test_freeze_boundary_change_rebuilds_schedule(self):
        # The schedule is a function of live requires_grad flags (a
        # frozen subtree contributes no closures in autograd), so a
        # cached train step must regenerate its adjoint when the
        # boundary moves — and stay bitwise against autograd both
        # before and after.
        x4, target = _frame_and_target(7, 32, 48)
        weight_map = lvs_weight_map(target)

        got_student = StudentNet(width=0.5, seed=7)
        got_student.unfreeze()
        plan = got_student.engine_plan("train_full", (tuple(x4.shape),))
        full_schedule_len = len(plan.adjoint._steps)
        got_student.train()
        plan.run((x4,), target, weight_map)

        partial_freeze(got_student)
        got_student.zero_grad()
        got_loss = plan.run((x4,), target, weight_map)
        assert len(plan.adjoint._steps) < full_schedule_len

        ref_student = StudentNet(width=0.5, seed=7)
        partial_freeze(ref_student)
        ref_loss, ref_grads = _autograd_grads(ref_student, x4, target, weight_map)
        assert got_loss == ref_loss
        for name, p in got_student.named_parameters():
            if ref_grads[name] is None:
                assert p.grad is None, name
            else:
                np.testing.assert_array_equal(p.grad, ref_grads[name], err_msg=name)


class TestThreeConsumerSchedulePin:
    """Regression-pin the accumulation order on the Figure-3b skips."""

    @pytest.fixture
    def train_step(self):
        student = StudentNet(width=0.5, seed=0)
        student.unfreeze()
        plan = student.engine_plan("train_full", ((1, 3, 32, 48),))
        assert plan is not None
        return student, plan

    def test_adjoint_shape(self, train_step):
        _, plan = train_step
        steps = plan.adjoint._steps
        # Seed gradient first, then one vjp per forward kernel (full
        # mode reaches every step exactly once).
        assert isinstance(steps[0], CrossEntropyVjpStep)
        assert len(steps) == plan.num_kernels + 1
        inner = [s._inner for s in steps[1:]]
        assert len(set(map(id, inner))) == len(inner)
        assert set(map(id, inner)) == set(map(id, plan._steps))

    def test_schedule_is_not_reversed_lowering_order(self, train_step):
        # The whole point of the generator: autograd's traversal is NOT
        # the reverse of the forward step list once skips fan out.  If
        # this ever collapses back to plain reversal, the 3-consumer
        # sums are being reordered silently.
        _, plan = train_step
        adjoint_order = [id(s._inner) for s in plan.adjoint._steps[1:]]
        reversed_order = [id(s) for s in reversed(plan._steps)]
        assert adjoint_order != reversed_order

    @pytest.mark.parametrize("skip", ["s1", "s2"])
    def test_three_consumer_accumulation_order(self, train_step, skip):
        # s1's gradient buffer sums three contributions; autograd runs
        # them concat -> bn -> project (see module docstring), and the
        # generated schedule must preserve exactly that sequence.  Same
        # shape for s2 one level deeper.
        student, plan = train_step
        block = student.sb2 if skip == "s1" else student.sb3
        # concat([s5, s1]) is the later of the two concats in trace
        # order; concat([s4, s2]) the earlier.
        concat_steps = [s for s in plan._steps if type(s).__name__ == "ConcatStep"]
        assert len(concat_steps) == 2
        concat_inner = concat_steps[1] if skip == "s1" else concat_steps[0]

        positions = {}
        for pos, vjp in enumerate(plan.adjoint._steps):
            if isinstance(vjp, ConcatVjpStep) and vjp._inner is concat_inner:
                positions["concat"] = pos
            elif isinstance(vjp, BatchNormVjpStep) and vjp._inner.module is block.bn:
                positions["bn"] = pos
            elif isinstance(vjp, ConvVjpStep) and vjp._inner.module is block.project:
                positions["project"] = pos
        assert set(positions) == {"concat", "bn", "project"}
        assert positions["concat"] < positions["bn"] < positions["project"]
