"""Parity tests: cached-front / compiled training vs the seed autograd loop.

Algorithm 1's observable behaviour (losses, steps, metrics, the weights
the server ships) must not change when the trainer routes through the
compiled engine.  Partial distillation is required to be *exactly*
reproduced — the cached front-end is a constant and every compiled
kernel mirrors its autograd twin's operation order.  The only tolerated
divergence is the running statistics of **frozen** batch-norm layers:
the cached path no longer replays the frozen front-end per step, and
those buffers are dead state (the student normalises with batch
statistics and frozen-module buffers are never communicated).
"""

import numpy as np
import pytest

from repro import engine
from repro.distill.config import DistillConfig, DistillMode
from repro.distill.trainer import (
    StudentTrainer,
    _CachedFrontStepRunner,
    _CompiledStepRunner,
)
from repro.models.student import StudentNet
from repro.segmentation.metrics import mean_iou
from repro.video.generator import SyntheticVideo, VideoConfig


@pytest.fixture
def frame_and_label():
    video = SyntheticVideo(VideoConfig(seed=9, height=32, width=48,
                                       num_objects=2, class_pool=(1,)))
    frame, label = next(iter(video.frames(1)))
    return frame, label


def run_training(mode, enabled, frame, label, seed=1, max_updates=6,
                 threshold=0.97, freeze_modules=None):
    student = StudentNet(width=0.5, seed=seed)
    previous = engine.set_enabled(enabled)
    try:
        trainer = StudentTrainer(
            student,
            DistillConfig(mode=mode, max_updates=max_updates, threshold=threshold),
            freeze_modules=freeze_modules,
        )
        result = trainer.train(frame, label)
    finally:
        engine.set_enabled(previous)
    return result, student


FROZEN_BUFFER_PREFIXES = tuple(
    f"{m}." for m in StudentNet.FRONT_MODULES
)


class TestPartialParity:
    def test_identical_train_result(self, frame_and_label):
        frame, label = frame_and_label
        ref, student_ref = run_training(DistillMode.PARTIAL, False, frame, label)
        got, student_got = run_training(DistillMode.PARTIAL, True, frame, label)
        assert ref.steps == got.steps
        assert ref.metric == pytest.approx(got.metric, abs=1e-12)
        assert ref.initial_metric == pytest.approx(got.initial_metric, abs=1e-12)
        assert ref.improved == got.improved
        np.testing.assert_allclose(ref.losses, got.losses, rtol=1e-6)

    def test_identical_shipped_state(self, frame_and_label):
        """Everything the server would communicate must match bit-exactly;
        only frozen-module BN running stats (dead state) may differ."""
        frame, label = frame_and_label
        _, student_ref = run_training(DistillMode.PARTIAL, False, frame, label)
        _, student_got = run_training(DistillMode.PARTIAL, True, frame, label)
        ref_state = student_ref.state_dict()
        got_state = student_got.state_dict()
        for key in ref_state:
            if key.startswith(FROZEN_BUFFER_PREFIXES) and "running_" in key:
                continue
            np.testing.assert_array_equal(
                ref_state[key], got_state[key], err_msg=key
            )

    def test_best_checkpoint_still_returned(self, frame_and_label):
        frame, label = frame_and_label
        result, student = run_training(
            DistillMode.PARTIAL, True, frame, label, max_updates=12, threshold=0.9
        )
        student.eval()
        final = mean_iou(student.predict(frame), label)
        assert final == pytest.approx(result.metric, abs=1e-6)

    def test_compiled_runner_selected(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.5, seed=1)
        trainer = StudentTrainer(student, DistillConfig())
        x4 = frame[None]
        runner = trainer._make_step_runner(frame, x4, label[None], None)
        assert isinstance(runner, (_CompiledStepRunner, _CachedFrontStepRunner))
        # The paper boundary compiles: expect the fully compiled tier.
        assert isinstance(runner, _CompiledStepRunner)

    def test_cached_front_fallback_matches(self, frame_and_label):
        """If the compiled train step is unavailable the trainer still
        caches the front-end and trains via autograd, with identical
        results."""
        frame, label = frame_and_label
        ref, _ = run_training(DistillMode.PARTIAL, False, frame, label)

        student = StudentNet(width=0.5, seed=1)
        trainer = StudentTrainer(
            student, DistillConfig(max_updates=6, threshold=0.97)
        )
        # Pre-poison the train-step cache so only the autograd fallback
        # tier is available.
        x4 = frame[None]
        feats = trainer._front_features(x4)
        shapes = tuple(tuple(f.shape) for f in feats)
        student._engine_plans[("train_back", shapes)] = None
        got = trainer.train(frame, label)
        assert ref.steps == got.steps
        np.testing.assert_allclose(ref.losses, got.losses, rtol=1e-6)
        assert ref.metric == pytest.approx(got.metric, abs=1e-12)


class TestFullModeParity:
    def test_full_mode_default_is_seed_exact(self, frame_and_label):
        # Full distillation now rides the generated adjoint plan by
        # default, and the adjoint's schedule reproduces autograd's
        # accumulation order bitwise — including the 3-consumer
        # Figure-3b skip tensors.  Published full-mode numbers therefore
        # still cannot depend on whether the engine is enabled.
        frame, label = frame_and_label
        ref, student_ref = run_training(DistillMode.FULL, False, frame, label)
        got, student_got = run_training(DistillMode.FULL, True, frame, label)
        assert ref.steps == got.steps
        np.testing.assert_array_equal(ref.losses, got.losses)
        assert ref.metric == got.metric
        ref_state, got_state = student_ref.state_dict(), student_got.state_dict()
        for key in ref_state:
            np.testing.assert_array_equal(ref_state[key], got_state[key], err_msg=key)

    def test_full_mode_compiled_runner_selected(self, frame_and_label):
        # The bit-exactness above must not come from silently falling
        # back to autograd: the trainer has to pick the compiled tier.
        frame, label = frame_and_label
        student = StudentNet(width=0.5, seed=1)
        trainer = StudentTrainer(student, DistillConfig(mode=DistillMode.FULL))
        x4 = frame[None]
        runner = trainer._make_step_runner(frame, x4, label[None], None)
        assert isinstance(runner, _CompiledStepRunner)

    def test_full_mode_updates_bn_buffers(self, frame_and_label):
        frame, label = frame_and_label
        _, student = run_training(DistillMode.FULL, True, frame, label,
                                  max_updates=3)
        fresh = StudentNet(width=0.5, seed=1)
        drift = max(
            np.abs(b - f).max()
            for (_, b), (_, f) in zip(student.named_buffers(), fresh.named_buffers())
        )
        assert drift > 0  # train-mode BN kernels keep momentum updates


class TestCustomFreezeBoundaries:
    def test_non_paper_boundary_falls_back_and_matches(self, frame_and_label):
        # Freezing only through sb2 leaves part of the "front" trainable:
        # the cached-front optimisation is invalid there and the trainer
        # must fall back to the full autograd loop with equal results.
        frame, label = frame_and_label
        freeze = ("in1", "in2", "sb1", "sb2")
        ref, _ = run_training(
            DistillMode.PARTIAL, False, frame, label, freeze_modules=freeze
        )
        got, _ = run_training(
            DistillMode.PARTIAL, True, frame, label, freeze_modules=freeze
        )
        assert ref.steps == got.steps
        np.testing.assert_allclose(ref.losses, got.losses, rtol=1e-6)
        assert ref.metric == pytest.approx(got.metric, abs=1e-12)

    def test_deeper_boundary_still_uses_cache(self, frame_and_label):
        # Freezing *more* than the paper boundary keeps the front
        # constant, so the cached path stays valid.
        frame, label = frame_and_label
        freeze = StudentNet.FRONT_MODULES + ("sb5",)
        ref, _ = run_training(
            DistillMode.PARTIAL, False, frame, label, freeze_modules=freeze
        )
        got, _ = run_training(
            DistillMode.PARTIAL, True, frame, label, freeze_modules=freeze
        )
        assert ref.steps == got.steps
        np.testing.assert_allclose(ref.losses, got.losses, rtol=1e-6)
        assert ref.metric == pytest.approx(got.metric, abs=1e-12)


class TestCompiledGradients:
    def test_frozen_parameters_get_no_grad(self, frame_and_label):
        frame, label = frame_and_label
        student = StudentNet(width=0.5, seed=1)
        trainer = StudentTrainer(student, DistillConfig(max_updates=1, threshold=0.99))
        trainer.train(frame, label)
        for name, p in student.named_parameters():
            top = name.split(".", 1)[0]
            if top in StudentNet.FRONT_MODULES:
                assert p.grad is None, name

    def test_compiled_gradients_match_autograd(self, frame_and_label):
        from repro.autograd.tensor import Tensor
        from repro.segmentation.losses import lvs_weight_map, weighted_cross_entropy

        frame, label = frame_and_label
        x4, target = frame[None], label[None]
        wm = lvs_weight_map(target)

        ref_student = StudentNet(width=0.5, seed=1)
        StudentTrainer(ref_student, DistillConfig())
        ref_student.train()
        with engine.disabled():
            loss = weighted_cross_entropy(ref_student(Tensor(x4)), target, wm)
            loss.backward()

        got_student = StudentNet(width=0.5, seed=1)
        trainer = StudentTrainer(got_student, DistillConfig())
        runner = trainer._make_step_runner(frame, x4, target, wm)
        got_student.train()
        compiled_loss = runner.step()

        assert compiled_loss == pytest.approx(loss.item(), rel=1e-6)
        ref_grads = {n: p.grad for n, p in ref_student.named_parameters()}
        for name, p in got_student.named_parameters():
            if ref_grads[name] is None:
                assert p.grad is None, name
            else:
                np.testing.assert_allclose(
                    p.grad, ref_grads[name], rtol=1e-5, atol=1e-7, err_msg=name
                )
