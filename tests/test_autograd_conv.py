"""Gradient and shape tests for the im2col convolution."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.conv import col2im, conv2d, im2col, _out_dim

from tests.helpers import assert_grad_close, numeric_gradient


class TestShapes:
    @pytest.mark.parametrize("kh,kw,stride,pad", [
        (3, 3, 1, (1, 1)),
        (3, 3, 2, (1, 1)),
        (1, 1, 1, (0, 0)),
        (3, 1, 1, (1, 0)),
        (1, 3, 1, (0, 1)),
        (5, 5, 2, (2, 2)),
    ])
    def test_output_shape(self, rng, kh, kw, stride, pad):
        x = Tensor(rng.normal(size=(2, 3, 8, 10)))
        w = Tensor(rng.normal(size=(4, 3, kh, kw)).astype(np.float32))
        out = conv2d(x, w, None, stride=stride, padding=pad)
        eh = _out_dim(8, kh, pad[0], stride)
        ew = _out_dim(10, kw, pad[1], stride)
        assert out.shape == (2, 4, eh, ew)

    def test_int_padding_accepted(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w = Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32))
        out = conv2d(x, w, None, padding=1)
        assert out.shape == (1, 2, 6, 6)

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 6, 6)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)).astype(np.float32))
        with pytest.raises(ValueError):
            conv2d(x, w, None, padding=1)

    def test_matches_manual_convolution(self, rng):
        # Cross-check a 1x1 conv against an explicit einsum.
        x = Tensor(rng.normal(size=(2, 3, 4, 4)))
        w = Tensor(rng.normal(size=(5, 3, 1, 1)).astype(np.float32))
        out = conv2d(x, w, None, padding=0)
        expected = np.einsum("nchw,oc->nohw", x.data, w.data[:, :, 0, 0])
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_bias_added_per_channel(self, rng):
        x = Tensor(np.zeros((1, 2, 4, 4), dtype=np.float32))
        w = Tensor(np.zeros((3, 2, 3, 3), dtype=np.float32))
        b = Tensor(np.array([1.0, 2.0, 3.0], dtype=np.float32))
        out = conv2d(x, w, b, padding=1)
        for c in range(3):
            np.testing.assert_allclose(out.data[0, c], c + 1.0)


class TestGradients:
    @pytest.mark.parametrize("kh,kw,stride,pad", [
        (3, 3, 1, (1, 1)),
        (3, 1, 1, (1, 0)),
        (1, 3, 2, (0, 1)),
        (3, 3, 2, (1, 1)),
    ])
    def test_weight_and_input_grads(self, rng, kh, kw, stride, pad):
        x = Tensor(rng.normal(size=(2, 2, 6, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, kh, kw)).astype(np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        out = conv2d(x, w, b, stride=stride, padding=pad)
        (out * out).sum().backward()

        def f():
            o = conv2d(x, w, b, stride=stride, padding=pad)
            return float((o.data**2).sum())

        assert_grad_close(w.grad, numeric_gradient(w, f))
        assert_grad_close(x.grad, numeric_gradient(x, f))
        assert_grad_close(b.grad, numeric_gradient(b, f))

    def test_frozen_weight_gets_no_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32), requires_grad=False)
        conv2d(x, w, None, padding=1).sum().backward()
        assert w.grad is None
        assert x.grad is not None

    def test_frozen_input_gets_no_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=False)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)).astype(np.float32), requires_grad=True)
        conv2d(x, w, None, padding=1).sum().backward()
        assert x.grad is None
        assert w.grad is not None


class TestIm2Col:
    def test_roundtrip_counts_overlaps(self, rng):
        # col2im(im2col(x)) multiplies each pixel by its patch multiplicity.
        x = rng.normal(size=(1, 1, 4, 4)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1, 1)
        back = col2im(cols, (1, 1, 4, 4), 3, 3, 1, 1, 1)
        # Interior pixels appear in 9 patches, corners in 4.
        assert back[0, 0, 1, 1] == pytest.approx(9 * x[0, 0, 1, 1], rel=1e-4)
        assert back[0, 0, 0, 0] == pytest.approx(4 * x[0, 0, 0, 0], rel=1e-4)

    def test_im2col_column_layout(self, rng):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        cols = im2col(x, 2, 2, 0, 0, 1)
        assert cols.shape == (4, 9)
        # First column is the top-left 2x2 patch, flattened row-major.
        np.testing.assert_allclose(cols[:, 0], [0, 1, 4, 5])

    def test_im2col_batched(self, rng):
        x = rng.normal(size=(3, 2, 5, 5)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1, 1)
        assert cols.shape == (2 * 9, 3 * 25)
