"""Engine coverage for the neural teacher (ROADMAP "Engine coverage").

``TeacherNet`` is built from ``Sequential`` chains; with the avg-pool
kernel added, every op the teacher family uses lowers to engine
kernels.  These tests pin bit-identity of compiled teacher inference
against the autograd path, and the avg-pool kernel's forward/backward
against its autograd twin.  The softmax-head kernel closes the last
gap: compiled ``soft_infer`` (class probabilities for soft-target
distillation) is bit-identical too.
"""

import numpy as np
import pytest

from repro import engine
from repro.autograd.tensor import Tensor, no_grad
from repro.engine.compiler import compile_plan
from repro.engine.kernels import AvgPool2dStep, SoftmaxStep, UntraceableError
from repro.models.teacher import TeacherNet
from repro.nn.layers import AvgPool2d, BatchNorm2d, Conv2d, ReLU, Sequential
from repro.nn.module import Module


@pytest.fixture
def frame(rng=None):
    return np.random.default_rng(0).random((3, 32, 48)).astype(np.float32)


class TestTeacherNetCompiles:
    def test_forward_plan_compiles(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        plan = teacher.engine_plan("forward", ((1, 3, 32, 48),))
        assert plan is not None, "TeacherNet no longer compiles"
        assert plan.num_kernels > 0

    def test_logits_bitwise_identical_to_autograd(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        plan = teacher.engine_plan("forward", ((1, 3, 32, 48),))
        (logits,) = plan.run(frame[None])
        teacher.eval()
        with no_grad():
            ref = teacher.forward(Tensor(frame[None])).data
        assert ref.shape == logits.shape
        assert ref.tobytes() == logits.tobytes()

    def test_infer_argmax_identical_to_autograd(self, frame):
        teacher = TeacherNet(width=8, seed=1)
        got = teacher.infer(frame)
        with engine.disabled():
            ref = teacher.infer(frame)
        np.testing.assert_array_equal(got, ref)

    def test_infer_uses_compiled_plan(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        teacher.infer(frame)
        key = ("forward", ((1, 3, 32, 48),))
        assert teacher._engine_plans.get(key) is not None

    def test_engine_disabled_returns_no_plan(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        with engine.disabled():
            assert teacher.engine_plan("forward", ((1, 3, 32, 48),)) is None

    def test_infer_preserves_training_mode(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        teacher.train(True)
        teacher.infer(frame)
        assert teacher.training

    def test_unknown_plan_kind_raises(self):
        teacher = TeacherNet(width=8, seed=0)
        with pytest.raises(KeyError):
            teacher.engine_plan("train_back", ((1, 3, 32, 48),))


class _PoolNet(Module):
    """Sequential chain with average pooling (encoder-pool-decoder)."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.body = Sequential(
            Conv2d(3, 8, 3, rng=rng), BatchNorm2d(8), ReLU(),
            AvgPool2d(2),
            Conv2d(8, 8, 3, rng=rng), ReLU(),
            AvgPool2d(2),
            Conv2d(8, 5, 1, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.body(x)


class TestAvgPoolKernel:
    def test_sequential_avgpool_net_bitwise(self):
        net = _PoolNet()
        x = np.random.default_rng(3).random((1, 3, 16, 24)).astype(np.float32)
        plan = net.engine_plan("forward", ((1, 3, 16, 24),))
        assert plan is not None
        (got,) = plan.run(x)
        net.eval()
        with no_grad():
            ref = net.forward(Tensor(x)).data
        assert got.shape == ref.shape == (1, 5, 4, 6)
        assert got.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("k", [2, 4])
    def test_step_forward_matches_autograd(self, k):
        x = np.random.default_rng(4).random((2, 3, 8, 8)).astype(np.float32)
        step = AvgPool2dStep(0, 1, x.shape, k, training=False)
        env = [x, None]
        step.forward(env)
        ref = Tensor(x).avg_pool2d(k).data
        assert env[1].tobytes() == ref.tobytes()

    def test_step_backward_matches_autograd(self):
        rng = np.random.default_rng(5)
        x = rng.random((2, 3, 8, 12)).astype(np.float32)
        upstream = rng.random((2, 3, 4, 6)).astype(np.float32)

        t = Tensor(x, requires_grad=True)
        out = t.avg_pool2d(2)
        out.backward(upstream)

        step = AvgPool2dStep(0, 1, x.shape, 2, training=True)
        env = [x, None]
        step.forward(env)
        gbufs = [np.zeros_like(x), upstream.copy()]
        step.backward(env, gbufs)
        assert gbufs[0].tobytes() == t.grad.tobytes()

    def test_indivisible_geometry_raises(self):
        with pytest.raises(UntraceableError):
            AvgPool2dStep(0, 1, (1, 3, 7, 8), 2, training=False)


class TestSoftmaxHead:
    """Compiled ``soft_infer``: the softmax-head kernel (ISSUE 4)."""

    def test_soft_plan_compiles(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        plan = teacher.engine_plan("soft", ((1, 3, 32, 48),))
        assert plan is not None, "soft_infer no longer compiles"
        assert plan.num_kernels > 0

    def test_soft_infer_bitwise_identical_to_autograd(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        got = teacher.soft_infer(frame)
        with engine.disabled():
            ref = teacher.soft_infer(frame)
        assert got.shape == ref.shape
        assert got.tobytes() == ref.tobytes()

    def test_soft_infer_is_a_distribution(self, frame):
        teacher = TeacherNet(width=8, seed=1)
        probs = teacher.soft_infer(frame)
        assert probs.shape == (teacher.num_classes, 32, 48)
        np.testing.assert_allclose(probs.sum(axis=0), 1.0, rtol=1e-5)

    def test_soft_infer_uses_compiled_plan(self, frame):
        teacher = TeacherNet(width=8, seed=0)
        teacher.soft_infer(frame)
        assert teacher._engine_plans.get(("soft", ((1, 3, 32, 48),))) is not None

    def test_soft_infer_result_owns_memory(self, frame):
        """Plan output buffers are reused; soft_infer must hand back a
        copy that survives the next run."""
        teacher = TeacherNet(width=8, seed=0)
        first = teacher.soft_infer(frame)
        snapshot = first.copy()
        teacher.soft_infer(frame * 0.5 + 0.1)
        assert first.tobytes() == snapshot.tobytes()

    def test_step_forward_matches_functional_softmax(self):
        from repro.autograd import functional as F

        logits = np.random.default_rng(7).normal(
            size=(2, 9, 8, 12)
        ).astype(np.float32) * 10
        step = SoftmaxStep(0, 1, logits.shape, axis=1, training=False)
        env = [logits, None]
        step.forward(env)
        ref = F.softmax(Tensor(logits), axis=1).data
        assert env[1].tobytes() == ref.tobytes()

    def test_non_channel_axis_raises(self):
        with pytest.raises(UntraceableError):
            SoftmaxStep(0, 1, (1, 9, 8, 8), axis=2, training=False)

    def test_training_plan_raises(self):
        """Training graphs fall back: the losses differentiate through
        log_softmax on the autograd side."""
        with pytest.raises(UntraceableError):
            SoftmaxStep(0, 1, (1, 9, 8, 8), axis=1, training=True)
