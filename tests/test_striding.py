"""Tests for Algorithm 2 (adaptive stride) and the baseline policies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.distill.config import DistillConfig
from repro.striding.adaptive import AdaptiveStride, next_stride
from repro.striding.baselines import ExponentialBackoffStride, FixedStride


CFG = DistillConfig()  # threshold 0.8, strides [8, 64]


class TestNextStrideMath:
    def test_metric_at_threshold_keeps_stride(self):
        s = next_stride(20.0, 0.8, 0.8, 1, 1000)
        assert s == pytest.approx(20.0)

    def test_metric_one_doubles(self):
        s = next_stride(20.0, 1.0, 0.8, 1, 1000)
        assert s == pytest.approx(40.0)

    def test_metric_zero_collapses_to_min(self):
        s = next_stride(20.0, 0.0, 0.8, 8, 64)
        assert s == 8.0

    def test_linear_below_threshold(self):
        # ratio = metric / threshold (line through (0,0) and (T,1)).
        s = next_stride(10.0, 0.4, 0.8, 1, 1000)
        assert s == pytest.approx(10.0 * 0.5)

    def test_linear_above_threshold(self):
        # ratio = (m - 2T + 1)/(1 - T) (line through (T,1) and (1,2)).
        s = next_stride(10.0, 0.9, 0.8, 1, 1000)
        assert s == pytest.approx(10.0 * 1.5)

    def test_clamped_to_bounds(self):
        assert next_stride(100.0, 1.0, 0.8, 8, 64) == 64.0
        assert next_stride(1.0, 0.1, 0.8, 8, 64) == 8.0

    def test_invalid_metric_rejected(self):
        with pytest.raises(ValueError):
            next_stride(10.0, 1.5, 0.8, 8, 64)
        with pytest.raises(ValueError):
            next_stride(10.0, -0.1, 0.8, 8, 64)

    @given(
        stride=st.floats(1.0, 64.0),
        metric=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_always_within_bounds_property(self, stride, metric):
        s = next_stride(stride, metric, 0.8, 8, 64)
        assert 8.0 <= s <= 64.0

    @given(
        m1=st.floats(0.0, 1.0),
        m2=st.floats(0.0, 1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_metric_property(self, m1, m2):
        # A better metric never yields a shorter next stride.
        lo, hi = sorted([m1, m2])
        assert next_stride(20.0, lo, 0.8, 1, 1000) <= next_stride(
            20.0, hi, 0.8, 1, 1000
        ) + 1e-9

    def test_ratio_continuous_at_threshold(self):
        eps = 1e-6
        below = next_stride(10.0, 0.8 - eps, 0.8, 1, 1000)
        above = next_stride(10.0, 0.8 + eps, 0.8, 1, 1000)
        assert below == pytest.approx(above, abs=1e-3)


class TestAdaptiveStride:
    def test_starts_at_min(self):
        policy = AdaptiveStride(CFG)
        assert policy.stride == CFG.min_stride
        assert policy.frames_to_next() == CFG.min_stride

    def test_good_metrics_grow_to_max(self):
        policy = AdaptiveStride(CFG)
        for _ in range(10):
            policy.update(1.0)
        assert policy.stride == CFG.max_stride

    def test_bad_metric_collapses(self):
        policy = AdaptiveStride(CFG)
        for _ in range(10):
            policy.update(1.0)
        policy.update(0.1)
        assert policy.stride < CFG.max_stride

    def test_reset(self):
        policy = AdaptiveStride(CFG)
        policy.update(1.0)
        policy.reset()
        assert policy.stride == CFG.min_stride

    def test_frames_to_next_rounds(self):
        policy = AdaptiveStride(CFG)
        policy.stride = 12.6
        assert policy.frames_to_next() == 13


class TestFixedStride:
    def test_ignores_metric(self):
        policy = FixedStride(CFG, stride=16)
        for metric in (0.0, 0.5, 1.0):
            assert policy.update(metric) == 16.0
        assert policy.frames_to_next() == 16

    def test_defaults_to_min_stride(self):
        assert FixedStride(CFG).stride == CFG.min_stride

    def test_reset_noop(self):
        policy = FixedStride(CFG, stride=16)
        policy.update(1.0)
        policy.reset()
        assert policy.stride == 16.0


class TestExponentialBackoff:
    def test_doubles_on_success(self):
        policy = ExponentialBackoffStride(CFG)
        policy.update(0.9)
        assert policy.stride == 16.0
        policy.update(0.9)
        assert policy.stride == 32.0

    def test_capped_at_max(self):
        policy = ExponentialBackoffStride(CFG)
        for _ in range(10):
            policy.update(0.95)
        assert policy.stride == CFG.max_stride

    def test_resets_on_failure(self):
        policy = ExponentialBackoffStride(CFG)
        for _ in range(4):
            policy.update(0.95)
        policy.update(0.5)
        assert policy.stride == CFG.min_stride

    def test_borderline_oscillates(self):
        # Metrics hovering at the threshold: exponential policy jumps
        # between extremes while the adaptive one stays put — the
        # paper's reason for a proportional rule.
        exp = ExponentialBackoffStride(CFG)
        ada = AdaptiveStride(CFG)
        strides_exp, strides_ada = [], []
        for metric in [0.82, 0.78, 0.82, 0.78, 0.82, 0.78]:
            strides_exp.append(exp.update(metric))
            strides_ada.append(ada.update(metric))
        assert max(strides_exp) - min(strides_exp) > max(strides_ada) - min(
            strides_ada
        )
