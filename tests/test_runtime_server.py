"""Tests for the server (Algorithm 3): teacher inference, training,
update payloads, and the live serve loop over the pipe transport."""

import numpy as np
import pytest

from repro.comm.mp import run_in_subprocess
from repro.distill.config import DistillConfig, DistillMode
from repro.models.student import StudentNet
from repro.models.teacher import OracleTeacher, TeacherNet
from repro.nn.serialize import apply_state_dict
from repro.runtime.server import Server
from repro.video.generator import SyntheticVideo, VideoConfig


def key_frame(seed=0):
    video = SyntheticVideo(VideoConfig(seed=seed, height=32, width=48,
                                       num_objects=2, class_pool=(1,)))
    return next(iter(video.frames(1)))


class TestHandleKeyFrame:
    def test_reply_contains_update_and_metric(self):
        server = Server(StudentNet(width=0.25), OracleTeacher(),
                        DistillConfig(max_updates=2))
        frame, label = key_frame()
        reply, result = server.handle_key_frame(frame, label)
        assert 0.0 <= reply.metric <= 1.0
        assert reply.metric == result.metric
        assert reply.steps == result.steps
        assert isinstance(reply.update, dict) and reply.update

    def test_partial_update_excludes_front(self):
        server = Server(StudentNet(width=0.25), OracleTeacher(),
                        DistillConfig(mode=DistillMode.PARTIAL, max_updates=1))
        frame, label = key_frame()
        reply, _ = server.handle_key_frame(frame, label)
        assert not any(k.startswith(("in1", "in2", "sb1.", "sb4.")) for k in reply.update)

    def test_full_update_includes_front(self):
        server = Server(StudentNet(width=0.25), OracleTeacher(),
                        DistillConfig(mode=DistillMode.FULL, max_updates=1))
        frame, label = key_frame()
        reply, _ = server.handle_key_frame(frame, label)
        assert any(k.startswith("in1") for k in reply.update)

    def test_reply_bytes_paper_scale(self):
        partial = Server(StudentNet(width=0.25), OracleTeacher(),
                         DistillConfig(mode=DistillMode.PARTIAL))
        full = Server(StudentNet(width=0.25), OracleTeacher(),
                      DistillConfig(mode=DistillMode.FULL))
        assert partial.reply_bytes() == partial.sizes.student_diff_partial
        assert full.reply_bytes() == full.sizes.student_full
        assert partial.reply_bytes() < full.reply_bytes()

    def test_update_applies_cleanly_to_peer(self):
        server = Server(StudentNet(width=0.25, seed=4), OracleTeacher(),
                        DistillConfig(max_updates=2))
        client_student = StudentNet(width=0.25, seed=4)
        frame, label = key_frame()
        reply, _ = server.handle_key_frame(frame, label)
        apply_state_dict(client_student, reply.update)
        server.student.eval(), client_student.eval()
        np.testing.assert_array_equal(
            client_student.predict(frame), server.student.predict(frame)
        )

    def test_neural_teacher_supported(self):
        server = Server(StudentNet(width=0.25), TeacherNet(width=8),
                        DistillConfig(max_updates=1))
        frame, label = key_frame()
        reply, _ = server.handle_key_frame(frame)  # no label needed
        assert reply.update

    def test_metric_improves_over_key_frames(self):
        server = Server(StudentNet(width=0.25, seed=2), OracleTeacher(),
                        DistillConfig(max_updates=8, threshold=0.9))
        frame, label = key_frame()
        first = server.handle_key_frame(frame, label)[0].metric
        for _ in range(4):
            last = server.handle_key_frame(frame, label)[0].metric
        assert last >= first


def _client_driver(server_student_seed=5, num_key_frames=3):
    """Build the messages a client would send."""
    video = SyntheticVideo(VideoConfig(seed=1, height=32, width=48,
                                       num_objects=2, class_pool=(1,)))
    return [next(iter(video.frames(1))) for _ in range(num_key_frames)]


def _serve_entry(endpoint):
    server = Server(StudentNet(width=0.25, seed=5), OracleTeacher(),
                    DistillConfig(max_updates=2))
    server.serve(endpoint)


class TestServeLoop:
    def test_protocol_over_real_processes(self):
        endpoint, proc = run_in_subprocess(_serve_entry)
        try:
            initial = endpoint.recv()  # initial student weights
            assert isinstance(initial, dict) and initial
            for frame, label in _client_driver():
                endpoint.send((frame, label), nbytes=frame.nbytes)
                reply = endpoint.recv()
                assert 0.0 <= reply.metric <= 1.0
                assert reply.update
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=30)
        assert proc.exitcode == 0
