"""Transport error paths: every failure is loud, typed, and helpful.

The satellite contract of ISSUE 4: a registry typo names the available
transports, malformed wire buffers (truncated, oversized declarations,
unknown versions/kinds) raise ``WireError`` instead of decoding
garbage, and a wedged shm ring surfaces ``TimeoutError`` with slot
diagnostics instead of hanging the process.
"""

import numpy as np
import pytest

from repro.transport import registry, wire
from repro.transport.shm import ShmRing, spawn_shm_pair


class TestRegistryErrors:
    def test_typo_message_lists_every_available_transport(self):
        with pytest.raises(KeyError) as excinfo:
            registry.get_transport("smh")  # classic transposition
        message = str(excinfo.value)
        assert "smh" in message
        for name in ("inproc", "pipe", "shm", "socket"):
            assert name in message

    def test_spawn_on_inproc_names_the_transport(self):
        with pytest.raises(ValueError, match="inproc"):
            registry.spawn_server("inproc", lambda endpoint: None)

    def test_serve_many_on_pipe_refused(self):
        with pytest.raises(ValueError, match="pipe"):
            registry.serve_many("pipe", lambda listener: None, n_clients=2)

    def test_connect_on_pipe_refused(self):
        with pytest.raises(ValueError, match="pipe"):
            registry.connect("pipe", ("nowhere", 0))


class TestWireDecodeErrors:
    def _frame(self):
        return wire.encode((np.ones((3, 8, 8), np.float32), None))

    def test_truncated_header(self):
        with pytest.raises(wire.WireError, match="header"):
            wire.decode(self._frame()[: wire.HEADER_NBYTES - 1])

    def test_truncated_body(self):
        encoded = self._frame()
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(encoded[: len(encoded) - 7])

    def test_oversized_declared_length(self):
        """A header declaring more bytes than the buffer holds must not
        read past the end."""
        bad = bytearray(self._frame())
        huge = len(bad) * 1000
        bad[6:14] = huge.to_bytes(8, "little")
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(bad)

    def test_undersized_declared_length(self):
        """total_len smaller than the header itself is structurally
        impossible and must be rejected before any body parsing."""
        bad = bytearray(wire.encode(None))
        bad[6:14] = (3).to_bytes(8, "little")
        with pytest.raises(wire.WireError, match="smaller than a header"):
            wire.decode(bad)

    def test_unknown_version(self):
        bad = bytearray(self._frame())
        bad[2] = wire.VERSION + 41
        with pytest.raises(wire.WireError, match="version"):
            wire.decode(bad)

    def test_unknown_kind(self):
        bad = bytearray(self._frame())
        bad[3] = 250
        with pytest.raises(wire.WireError, match="kind"):
            wire.decode(bad)

    def test_session_out_of_header_range(self):
        with pytest.raises(wire.WireError, match="session"):
            wire.encode(None, session=wire.MAX_SESSION + 1)

    def test_control_messages_roundtrip_with_session(self):
        for ctl in (wire.Hello(3), wire.Accept(3), wire.Bye(65535)):
            session, out = wire.decode_tagged(wire.encode(ctl))
            assert out == ctl
            assert session == ctl.session


class TestShmTimeouts:
    def test_recv_timeout_names_the_stuck_slot(self):
        a, b = spawn_shm_pair(slots=2, slot_nbytes=4096, timeout_s=0.1)
        try:
            with pytest.raises(TimeoutError, match="slot"):
                b.recv()
        finally:
            b.close(), a.close()

    def test_send_timeout_when_peer_never_drains(self):
        a, b = spawn_shm_pair(slots=2, slot_nbytes=4096, timeout_s=0.1)
        try:
            payload = np.zeros(64, np.uint8)
            a.send(payload, 64)
            a.send(payload, 64)
            with pytest.raises(TimeoutError, match="timed out"):
                a.send(payload, 64)
        finally:
            b.close(), a.close()

    def test_corrupt_slot_fails_loudly_not_silently(self):
        """A ring slot holding non-wire bytes raises WireError (the
        magic/version check), never a silent mis-decode."""
        ring = ShmRing(slots=2, slot_nbytes=4096)
        try:
            other = ShmRing.attach(ring.describe())
            ring._payloads[0][:4] = b"XXXX"
            ring._lens[0][...] = 64
            ring._seq[0] = 1  # publish the garbage
            with pytest.raises(wire.WireError):
                other.recv_message(timeout_s=1.0)
            other.close()
        finally:
            ring.close()
