"""Transport error paths: every failure is loud, typed, and helpful.

The satellite contract of ISSUE 4: a registry typo names the available
transports, malformed wire buffers (truncated, oversized declarations,
unknown versions/kinds) raise ``WireError`` instead of decoding
garbage, and a wedged shm ring surfaces ``TimeoutError`` with slot
diagnostics instead of hanging the process.  ISSUE 5 adds the
admission-era paths: a malformed ADMIT blueprint is REJECTed (never
crashes the server other clients depend on), REJECT reason codes
round-trip the wire, and a client dialing a capacity-exhausted server
gets a clean typed error with no wedged ring or leaked shm segment.
ISSUE 6 adds the overload-era paths: the v4 REJECT ``retry_after``
hint round-trips (and v3 REJECT frames still decode), and a client
killed with ``SIGKILL`` mid-run is torn down by the receive budget /
idle reaper without wedging the server or leaking its shm segments.
"""

import dataclasses

import numpy as np
import pytest

from repro.transport import registry, wire
from repro.transport.shm import ShmRing, spawn_shm_pair


class TestRegistryErrors:
    def test_typo_message_lists_every_available_transport(self):
        with pytest.raises(KeyError) as excinfo:
            registry.get_transport("smh")  # classic transposition
        message = str(excinfo.value)
        assert "smh" in message
        for name in ("inproc", "pipe", "shm", "socket"):
            assert name in message

    def test_spawn_on_inproc_names_the_transport(self):
        with pytest.raises(ValueError, match="inproc"):
            registry.spawn_server("inproc", lambda endpoint: None)

    def test_serve_many_on_pipe_refused(self):
        with pytest.raises(ValueError, match="pipe"):
            registry.serve_many("pipe", lambda listener: None, n_clients=2)

    def test_connect_on_pipe_refused(self):
        with pytest.raises(ValueError, match="pipe"):
            registry.connect("pipe", ("nowhere", 0))


class TestWireDecodeErrors:
    def _frame(self):
        return wire.encode((np.ones((3, 8, 8), np.float32), None))

    def test_truncated_header(self):
        with pytest.raises(wire.WireError, match="header"):
            wire.decode(self._frame()[: wire.HEADER_NBYTES - 1])

    def test_truncated_body(self):
        encoded = self._frame()
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(encoded[: len(encoded) - 7])

    def test_oversized_declared_length(self):
        """A header declaring more bytes than the buffer holds must not
        read past the end."""
        bad = bytearray(self._frame())
        huge = len(bad) * 1000
        bad[6:14] = huge.to_bytes(8, "little")
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(bad)

    def test_undersized_declared_length(self):
        """total_len smaller than the header itself is structurally
        impossible and must be rejected before any body parsing."""
        bad = bytearray(wire.encode(None))
        bad[6:14] = (3).to_bytes(8, "little")
        with pytest.raises(wire.WireError, match="smaller than a header"):
            wire.decode(bad)

    def test_unknown_version(self):
        bad = bytearray(self._frame())
        bad[2] = wire.VERSION + 41
        with pytest.raises(wire.WireError, match="version"):
            wire.decode(bad)

    def test_unknown_kind(self):
        bad = bytearray(self._frame())
        bad[3] = 250
        with pytest.raises(wire.WireError, match="kind"):
            wire.decode(bad)

    def test_session_out_of_header_range(self):
        with pytest.raises(wire.WireError, match="session"):
            wire.encode(None, session=wire.MAX_SESSION + 1)

    def test_control_messages_roundtrip_with_session(self):
        for ctl in (wire.Hello(3), wire.Accept(3), wire.Bye(65535)):
            session, out = wire.decode_tagged(wire.encode(ctl))
            assert out == ctl
            assert session == ctl.session

    def test_v2_frames_still_decode_but_not_v3_kinds(self):
        """The v2 header layout is unchanged, so v2 frames decode; a v2
        frame claiming a v3-only kind is structurally impossible."""
        legacy = bytearray(wire.encode(wire.Bye(9)))
        legacy[2] = 2
        assert wire.decode(legacy) == wire.Bye(9)
        bad = bytearray(wire.encode(_admit()))
        bad[2] = 2
        with pytest.raises(wire.WireError, match="version 3"):
            wire.decode(bad)


def _admit(**overrides):
    fields = dict(
        student_width=0.25, student_seed=0, pretrain_steps=10,
        frame_h=32, frame_w=48, mode="partial", threshold=0.7,
        max_updates=4, min_stride=4, max_stride=16, lr=0.01,
        reset_optimizer_state=True, teacher_boundary_noise=0.0,
    )
    fields.update(overrides)
    return wire.Admit(**fields)


class TestAdmissionErrors:
    """ISSUE 5 satellite: the admission-era error paths."""

    def test_admit_blueprint_roundtrips(self):
        for admit in (_admit(), _admit(mode="full", student_seed=7,
                                       reset_optimizer_state=False)):
            session, out = wire.decode_tagged(wire.encode(admit))
            assert out == admit
            assert session == 0

    def test_malformed_admit_missing_field_is_loud(self):
        state = _admit().to_state()
        del state["student_width"]
        with pytest.raises(wire.WireError, match="malformed ADMIT"):
            wire.Admit.from_state(state)

    def test_malformed_admit_unknown_field_is_loud(self):
        state = _admit().to_state()
        state["surprise"] = np.int64(1)
        with pytest.raises(wire.WireError, match="malformed ADMIT"):
            wire.Admit.from_state(state)

    def test_malformed_admit_bad_mode_code_is_loud(self):
        state = _admit().to_state()
        state["mode"] = np.uint8(200)
        with pytest.raises(wire.WireError, match="mode code"):
            wire.Admit.from_state(state)

    def test_truncated_admit_body(self):
        encoded = wire.encode(_admit())
        with pytest.raises(wire.WireError, match="truncated"):
            wire.decode(encoded[: len(encoded) - 5])

    def test_reject_reason_roundtrip(self):
        for code, name in wire.REJECT_REASONS.items():
            reject = wire.Reject(3, code, f"details about {name}")
            session, out = wire.decode_tagged(wire.encode(reject))
            assert out == reject
            assert session == 3
            assert out.reason == name
        unknown = wire.decode(wire.encode(wire.Reject(0, 999)))
        assert unknown.reason == "code-999"

    def test_reject_detail_too_long_for_u16(self):
        with pytest.raises(wire.WireError, match="detail"):
            wire.encode(wire.Reject(0, wire.REJECT_CAPACITY, "x" * 70000))

    def test_semantically_bad_blueprint_is_rejected_not_fatal(self):
        """A structurally valid ADMIT whose values are nonsense must
        REJECT with malformed-blueprint — the server keeps serving."""
        from repro.runtime.session import SessionConfig, build_session
        from repro.serving.runtime import AdmissionError, start_server

        handle = start_server([], transport="shm", n_clients=1,
                              idle_timeout_s=60)
        try:
            connection = handle.parent_connection()
            with pytest.raises(AdmissionError, match="malformed-blueprint"):
                connection.admit_session(_admit(student_width=-1.0))
            with pytest.raises(AdmissionError, match="malformed-blueprint"):
                connection.admit_session(_admit(min_stride=32, max_stride=4))
            with pytest.raises(AdmissionError, match="malformed-blueprint"):
                connection.admit_session(_admit(student_seed=-1))
            with pytest.raises(AdmissionError, match="malformed-blueprint"):
                # Passes the per-field checks (1x1 >= 1) but breaks
                # server-side model construction (spatial dims must
                # divide by 4): construction failures REJECT too.
                connection.admit_session(_admit(frame_h=1, frame_w=1))
            # The server survived both: a good admission still works.
            config = dataclasses.replace(
                SessionConfig(student_width=0.25, pretrain_steps=5),
                attach=handle.admit_ticket(),
            )
            client = build_session(config, (32, 48))
            client.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0

    def test_capacity_exhausted_dial_is_clean(self):
        """A standalone client process dialing a full server gets a
        typed capacity error; nothing wedges and the parent unlinks
        every shm segment it created."""
        import multiprocessing as mp
        import pathlib

        from repro.runtime.session import SessionConfig, build_session
        from repro.serving.runtime import start_server

        def _dial_full_server(address, result_conn):
            from repro.serving.runtime import AdmissionError

            config = dataclasses.replace(
                SessionConfig(student_width=0.25, pretrain_steps=5),
                attach=address,
            )
            try:
                build_session(config, (32, 48))
                result_conn.send("admitted")
            except AdmissionError as exc:
                result_conn.send(exc.reason)
            finally:
                result_conn.close()

        def shm_segments():
            # Only multiprocessing.shared_memory segments (psm_ prefix):
            # unrelated processes creating other /dev/shm entries while
            # this test runs must not fail it.
            shm_dir = pathlib.Path("/dev/shm")
            if not shm_dir.is_dir():
                return None
            return {p for p in shm_dir.iterdir() if p.name.startswith("psm_")}

        before = shm_segments()
        handle = start_server([], transport="shm", n_clients=2,
                              max_sessions=1, idle_timeout_s=60)
        try:
            config = dataclasses.replace(
                SessionConfig(student_width=0.25, pretrain_steps=5),
                attach=handle.admit_ticket(),
            )
            occupant = build_session(config, (32, 48))
            parent_conn, child_conn = mp.Pipe(duplex=False)
            proc = mp.Process(
                target=_dial_full_server,
                args=(handle.admit_address(1), child_conn), daemon=True,
            )
            proc.start()
            child_conn.close()
            assert parent_conn.poll(60), "dialing client never reported"
            assert parent_conn.recv() == "capacity"
            proc.join(timeout=30)
            assert proc.exitcode == 0
            occupant.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        if before is not None:
            leaked = shm_segments() - before
            assert not leaked, f"leaked shm segments: {leaked}"


class TestOverloadWire:
    """ISSUE 6 satellite: the v4 REJECT ``retry_after`` hint."""

    def test_retry_after_roundtrips(self):
        for hint in (None, 0, 1, 64, 0xFFFFFFFFFFFFFFFF):
            reject = wire.Reject(7, wire.REJECT_OVERLOADED, "bucket dry", hint)
            session, out = wire.decode_tagged(wire.encode(reject))
            assert out == reject
            assert out.retry_after == hint
            assert session == 7

    def test_retry_after_overflow_is_loud(self):
        with pytest.raises(wire.WireError, match="retry_after"):
            wire.encode(wire.Reject(0, wire.REJECT_OVERLOADED,
                                    retry_after=2 ** 64))

    def test_v3_reject_still_decodes(self):
        """A REJECT from a v3 peer carries the shorter historical body
        (no retry_after field); it must decode with ``retry_after``
        None, not shear into the detail bytes."""
        detail = "server full".encode()
        body = wire._REJECT_HEAD_V3.pack(wire.REJECT_CAPACITY, len(detail))
        total = wire.HEADER_NBYTES + len(body) + len(detail)
        buf = bytearray(total)
        wire._HEADER.pack_into(buf, 0, wire.MAGIC, 3, wire.KIND_REJECT,
                               5, total)
        buf[wire.HEADER_NBYTES:] = body + detail
        session, out = wire.decode_tagged(buf)
        assert session == 5
        assert out == wire.Reject(5, wire.REJECT_CAPACITY, "server full", None)
        assert out.retry_after is None


class TestClientDeath:
    """ISSUE 6 satellite: SIGKILL a client mid-run; the server must tear
    the connection down (receive budget + idle reaper), keep serving
    other clients, and leak no shm segment."""

    def test_sigkill_mid_frame_does_not_wedge_server(self):
        import multiprocessing as mp
        import pathlib

        from repro.runtime.session import SessionConfig, build_session
        from repro.serving.overload import OverloadConfig
        from repro.serving.runtime import start_server
        from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

        def _make_video():
            video = make_category_video(
                CATEGORY_BY_KEY["fixed-people"], height=32, width=48
            )
            video.reset()
            return video

        def _victim_main(address, started):
            config = dataclasses.replace(
                SessionConfig(student_width=0.25, pretrain_steps=5),
                attach=address,
            )
            client = build_session(config, (32, 48))
            started.send("running")
            started.close()
            client.run(_make_video().frames(10_000), label="victim")

        def shm_segments():
            shm_dir = pathlib.Path("/dev/shm")
            if not shm_dir.is_dir():
                return None
            return {p for p in shm_dir.iterdir() if p.name.startswith("psm_")}

        before = shm_segments()
        handle = start_server(
            [], transport="shm", n_clients=2, idle_timeout_s=60,
            overload=OverloadConfig(recv_budget_s=0.5, reap_idle_s=1.0),
        )
        try:
            recv_end, send_end = mp.Pipe(duplex=False)
            victim = mp.Process(
                target=_victim_main,
                args=(handle.admit_address(0), send_end), daemon=True,
            )
            victim.start()
            send_end.close()
            assert recv_end.poll(60), "victim never started its run"
            assert recv_end.recv() == "running"
            victim.kill()  # SIGKILL: no goodbye, possibly mid-frame
            victim.join(timeout=30)

            # The server must still admit and serve a fresh client to
            # completion while the dead slot is budget/reaper-collected.
            config = dataclasses.replace(
                SessionConfig(student_width=0.25, pretrain_steps=5),
                attach=handle.admit_address(1),
            )
            survivor = build_session(config, (32, 48))
            stats = survivor.run(_make_video().frames(6), label="survivor")
            assert stats.num_frames == 6
            survivor.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        if before is not None:
            leaked = shm_segments() - before
            assert not leaked, f"leaked shm segments: {leaked}"


class TestShardDeath:
    """ISSUE 10 satellite: SIGKILL one shard of a fleet; the surviving
    shards keep serving their sessions, new admissions for surviving
    tenants still land, and the fleet's shared segments (including the
    digest-checked shared-teacher weights the dead shard had mapped)
    all unlink at close."""

    def test_sigkill_one_shard_survivors_keep_serving(self):
        import pathlib

        from repro.runtime.session import SessionConfig, build_session
        from repro.serving.fleet import start_fleet
        from repro.serving.runtime import REPORT_LOST
        from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

        def _make_video():
            video = make_category_video(
                CATEGORY_BY_KEY["fixed-people"], height=32, width=48
            )
            video.reset()
            return video

        def shm_segments():
            shm_dir = pathlib.Path("/dev/shm")
            if not shm_dir.is_dir():
                return None
            return {p for p in shm_dir.iterdir() if p.name.startswith("psm_")}

        config = SessionConfig(
            student_width=0.25, pretrain_steps=5, teacher_arch="neural",
            teacher_width=8, teacher_seed=0,
        )
        before = shm_segments()
        handle = start_fleet(2, transport="socket", idle_timeout_s=60,
                             shared_teacher=(8, 0))
        try:
            # The first tenant lands on shard 0 (least-loaded, lowest
            # index) — deterministically on the shard that survives.
            occupant = build_session(
                dataclasses.replace(config, attach=handle.admit_address(0)),
                (32, 48),
            )
            handle.processes[1].kill()  # SIGKILL: no goodbye
            handle.processes[1].join(timeout=30)

            # The survivor keeps serving the open session...
            stats = occupant.run(_make_video().frames(6), label="occupant")
            assert stats.num_frames == 6
            # ...and still admits new sessions of the surviving tenant
            # (the dead shard's reuseport socket died with it, so the
            # front door routes every dial to the survivor).
            joiner = build_session(
                dataclasses.replace(config, attach=handle.admit_address(0)),
                (32, 48),
            )
            joiner_stats = joiner.run(_make_video().frames(4), label="joiner")
            assert joiner_stats.num_frames == 4
            joiner.server.close()
            occupant.server.close()
        finally:
            handle.close()
        reasons = handle.fleet_report["exit_reasons"]
        assert reasons[0] == "quiesced"
        assert reasons[1] == REPORT_LOST
        assert handle.fleet_report["frames_served"][0] > 0
        if before is not None:
            leaked = shm_segments() - before
            assert not leaked, f"leaked shm segments: {leaked}"


class TestShmTimeouts:
    def test_recv_timeout_names_the_stuck_slot(self):
        a, b = spawn_shm_pair(slots=2, slot_nbytes=4096, timeout_s=0.1)
        try:
            with pytest.raises(TimeoutError, match="slot"):
                b.recv()
        finally:
            b.close(), a.close()

    def test_send_timeout_when_peer_never_drains(self):
        a, b = spawn_shm_pair(slots=2, slot_nbytes=4096, timeout_s=0.1)
        try:
            payload = np.zeros(64, np.uint8)
            a.send(payload, 64)
            a.send(payload, 64)
            with pytest.raises(TimeoutError, match="timed out"):
                a.send(payload, 64)
        finally:
            b.close(), a.close()

    def test_corrupt_slot_fails_loudly_not_silently(self):
        """A ring slot holding non-wire bytes raises WireError (the
        magic/version check), never a silent mis-decode."""
        ring = ShmRing(slots=2, slot_nbytes=4096)
        try:
            other = ShmRing.attach(ring.describe())
            ring._payloads[0][:4] = b"XXXX"
            ring._lens[0][...] = 64
            ring._seq[0] = 1  # publish the garbage
            with pytest.raises(wire.WireError):
                other.recv_message(timeout_s=1.0)
            other.close()
        finally:
            ring.close()
