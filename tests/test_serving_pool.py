"""Property-test harness for the multi-session serving runtime.

The contract under test: a pooled run of N sessions produces
**bit-identical** ``RunStats`` — per-frame records, metrics, key-frame
decisions, timing, traffic — to N independent single-session runs,
across randomized configurations (widths, strides, forced delays,
distill modes, noisy teachers) and across every amortisation switch of
the pool.  This pins the batching/sharing layer to exactly the
semantics the paper's tables are computed from.
"""

import numpy as np
import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.runtime.session import SessionConfig, run_shadowtutor
from repro.serving.pool import SessionPool, SessionSpec
from repro.video.generator import SyntheticVideo, VideoConfig

HW = (32, 48)
PRETRAIN_STEPS = 16


def signature(stats, include_label=True):
    """Everything RunStats observes (one shared definition — see
    RunStats.signature)."""
    return stats.signature(include_label=include_label)


def make_video(seed, num_objects=2):
    return SyntheticVideo(
        VideoConfig(
            name=f"v{seed}", seed=seed, height=HW[0], width=HW[1],
            num_objects=num_objects, class_pool=(1, 3),
        )
    )


def random_session(rng, index):
    """One randomized (video, config) pair, rebuildable on demand."""
    mode = DistillMode.PARTIAL if rng.random() < 0.7 else DistillMode.FULL
    min_stride = int(rng.choice([2, 3, 4]))
    max_stride = int(rng.choice([8, 12, 16]))
    distill = DistillConfig(
        mode=mode,
        min_stride=min_stride,
        max_stride=max_stride,
        max_updates=int(rng.choice([2, 4])),
        threshold=float(rng.choice([0.5, 0.8])),
    )
    forced = rng.choice([None, 1, 2]) if rng.random() < 0.5 else None
    config = SessionConfig(
        distill=distill,
        student_width=float(rng.choice([0.25, 0.4])),
        pretrain_steps=PRETRAIN_STEPS,
        forced_delay_frames=None if forced is None else int(forced),
        teacher_boundary_noise=float(rng.choice([0.0, 0.2])),
    )
    video_seed = int(rng.integers(0, 10))
    return video_seed, config, f"rand{index}"


class TestPooledEqualsSingle:
    def test_pool_of_eight_randomized_sessions_is_bit_identical(self):
        """The acceptance property: N = 8 randomized sessions, pooled,
        == the same 8 sessions run independently."""
        rng = np.random.default_rng(2020)
        params = [random_session(rng, i) for i in range(8)]

        specs = [
            SessionSpec(
                video=make_video(seed), num_frames=24, config=config, label=label
            )
            for seed, config, label in params
        ]
        pooled = SessionPool(specs).run()

        singles = [
            run_shadowtutor(make_video(seed), 24, config, label=label)
            for seed, config, label in params
        ]
        for pool_stats, single_stats in zip(pooled.stats, singles):
            assert signature(pool_stats) == signature(single_stats)

    def test_identical_sessions_share_and_stay_identical(self):
        """The fan-out scenario: N viewers of one stream.  Everything is
        shared (predict dedup + memoised distillation) and every session
        still reports exactly the single-session numbers."""
        config = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
        specs = [
            SessionSpec(video=make_video(5), num_frames=20, config=config)
            for _ in range(4)
        ]
        pooled = SessionPool(specs).run()
        single = run_shadowtutor(make_video(5), 20, config)

        reference = signature(single, include_label=False)
        for stats in pooled.stats:
            assert signature(stats, include_label=False) == reference
        counters = pooled.counters
        assert counters["deduped_frames"] > 0, "duplicate frames must be shared"
        assert counters["distill_hits"] > 0, "identical training must be shared"
        # Shared training really ran once per distinct key frame.
        assert counters["distill_misses"] == pooled.stats[0].num_key_frames

    @pytest.mark.parametrize(
        "batch,share,dedup",
        [(False, False, False), (True, False, False), (False, True, True)],
    )
    def test_amortisation_switches_never_change_results(self, batch, share, dedup):
        """The switches select *how* results are computed, never what
        they are."""
        rng = np.random.default_rng(77)
        params = [random_session(rng, i) for i in range(4)]

        def run_pool(**kwargs):
            specs = [
                SessionSpec(
                    video=make_video(seed), num_frames=16, config=config, label=label
                )
                for seed, config, label in params
            ]
            return SessionPool(specs, **kwargs).run()

        default = run_pool()
        variant = run_pool(
            batch_predicts=batch,
            share_server_work=share,
            dedup_identical_frames=dedup,
        )
        for a, b in zip(default.stats, variant.stats):
            assert signature(a) == signature(b)

    def test_batched_route_is_exercised_before_divergence(self):
        """Sessions with equal widths share weights until their first
        update lands, so early non-key frames of distinct streams really
        flow through the n > 1 compiled plan."""
        config = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
        specs = [
            SessionSpec(video=make_video(seed), num_frames=12, config=config)
            for seed in (1, 2, 3, 4)
        ]
        result = SessionPool(specs, dedup_identical_frames=False).run()
        assert result.counters["batched_frames"] > 0
        assert result.counters["batch_runs"] > 0
        routes = {route for _, _, _, route in result.schedule}
        assert any(r.startswith("batch:") for r in routes)

    def test_run_shadowtutor_is_the_n1_pool_case(self):
        """N = 1 keeps the classic path: no digest bookkeeping, no
        shared caches, identical output object shape."""
        config = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
        stats = run_shadowtutor(make_video(3), 15, config)
        assert stats.num_frames == 15
        assert stats.frames[0].is_key
        pool = SessionPool(
            [SessionSpec(video=make_video(3), num_frames=15, config=config)]
        )
        result = pool.run()
        assert signature(result.stats[0], include_label=False) == signature(
            stats, include_label=False
        )
        assert result.counters["sessions"] == 1
        assert "distill_hits" not in result.counters  # no sharing machinery


class TestPoolSpecValidation:
    def test_shared_video_instance_rejected(self):
        video = make_video(0)
        with pytest.raises(ValueError, match="share one video"):
            SessionPool(
                [
                    SessionSpec(video=video, num_frames=4),
                    SessionSpec(video=video, num_frames=4),
                ]
            )

    def test_shared_stateful_components_rejected(self):
        """A stride policy or teacher shared between specs would be
        consumed interleaved, silently breaking bit-identity."""
        from repro.models.teacher import OracleTeacher
        from repro.striding.adaptive import AdaptiveStride

        policy = AdaptiveStride(DistillConfig())
        with pytest.raises(ValueError, match="share one stride_policy"):
            SessionPool(
                [
                    SessionSpec(video=make_video(1), num_frames=4, stride_policy=policy),
                    SessionSpec(video=make_video(2), num_frames=4, stride_policy=policy),
                ]
            )
        teacher = OracleTeacher(0.1)
        with pytest.raises(ValueError, match="share one teacher"):
            SessionPool(
                [
                    SessionSpec(video=make_video(1), num_frames=4, teacher=teacher),
                    SessionSpec(video=make_video(2), num_frames=4, teacher=teacher),
                ]
            )

    def test_short_source_stops_gracefully(self):
        """A source yielding fewer than num_frames truncates the run —
        the classic client-loop behaviour — instead of raising."""
        video = make_video(6)
        video.reset()
        frames = list(video.frames(5))
        config = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
        specs = [
            SessionSpec(frames=frames, num_frames=9, config=config),
            SessionSpec(video=make_video(7), num_frames=5, config=config),
        ]
        result = SessionPool(specs).run()
        assert result.stats[0].num_frames == 5
        assert result.stats[1].num_frames == 5

    def test_spec_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            SessionSpec(video=None, frames=None, num_frames=4)
        video = make_video(0)
        with pytest.raises(ValueError, match="exactly one"):
            SessionSpec(video=video, frames=[(None, None)], num_frames=4)

    def test_prerendered_frames_are_shareable(self):
        video = make_video(4)
        video.reset()
        frames = list(video.frames(10))
        config = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
        specs = [
            SessionSpec(frames=frames, config=config) for _ in range(3)
        ]
        result = SessionPool(specs).run()
        assert all(s.num_frames == 10 for s in result.stats)
        first = signature(result.stats[0], include_label=False)
        assert all(
            signature(s, include_label=False) == first for s in result.stats[1:]
        )
