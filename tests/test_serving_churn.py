"""End-to-end churn tests for dynamic session admission (ISSUE 5).

The acceptance property: a session admitted into a *running*
``ServerRuntime`` mid-run — over both shm and socket — yields
``RunStats`` bit-identical to the same blueprint run in-process, with
joins and departures interleaved.  Also covers admission over a shared
parent connection (pool of negotiated sessions on one link), the mixed
blueprint + admitted population, server-assigned session ids, and the
capacity policy's free-a-slot-and-retry behaviour.  ISSUE 6 adds the
typed refusal metadata (``AdmissionError.retryable`` / ``retry_after``)
and the bounded seeded retry loop behind ``admit_retries``.
"""

import dataclasses

import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.runtime.session import SessionConfig, build_session, run_shadowtutor
from repro.serving.pool import SessionPool, SessionSpec
from repro.serving.runtime import (
    AdmissionError,
    SessionBlueprint,
    run_churn_processes,
    start_server,
)
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

_HW = (32, 48)


def _config(mode=DistillMode.PARTIAL, width=0.25, **kw):
    return SessionConfig(
        distill=DistillConfig(max_updates=4, threshold=0.7,
                              min_stride=4, max_stride=16, mode=mode),
        student_width=width,
        pretrain_steps=10,
        **kw,
    )


def _video(key="fixed-people"):
    return make_category_video(CATEGORY_BY_KEY[key], height=_HW[0], width=_HW[1])


def _reference(config, frames, key="fixed-people"):
    return run_shadowtutor(_video(key), frames, config, label="ref")


class TestChurnProcesses:
    """The acceptance bar: joins and departures interleaved, every
    admitted session bit-identical to its in-process twin."""

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_mid_run_admission_bit_identical_with_churn(self, transport):
        # Two distinct blueprints prove the wire carries real geometry,
        # not just an id: width 0.25 and 0.3 sessions must each match
        # their own in-process reference.
        config_a, config_b = _config(width=0.25), _config(width=0.3)
        # Client 1 departs (6 frames) while clients 2 and 3 are still
        # joining/running; the server starts with ZERO blueprints.
        jobs = [
            (0.0, config_a, _HW, "fixed-people", 10, "a"),
            (0.3, config_b, _HW, "fixed-people", 6, "b"),
            (0.7, config_a, _HW, "fixed-people", 10, "c"),
            (1.1, config_b, _HW, "fixed-people", 8, "d"),
        ]
        handle = start_server(
            [], transport=transport, n_clients=len(jobs), idle_timeout_s=60
        )
        try:
            stats = run_churn_processes(handle, jobs, timeout_s=180)
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        for (got, (_, config, _, key, frames, _)) in zip(stats, jobs):
            ref = _reference(config, frames, key)
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )


class TestChurnTimesBatching:
    """ISSUE 7: sweep batching under churn.

    Mid-run admission lands sessions into sweeps already gathering
    cohorts, early departure removes a session between gather and
    serve of later cohorts, and a weight-diverged session (different
    student seed) must fall back to its own group — all bit-identical
    to in-process references, batched or not.
    """

    @pytest.mark.parametrize("transport,batch",
                             [("shm", True), ("shm", False), ("socket", True)])
    def test_churned_population_bit_identical(self, transport, batch):
        diverged = _config(width=0.25, student_seed=5)
        jobs = [
            # Two broadcast twins that can actually share cohorts...
            (0.0, _config(), _HW, "fixed-people", 10, "a"),
            (0.0, _config(), _HW, "fixed-people", 10, "b"),
            # ...a weight-diverged session (separate group, fallback)...
            (0.2, diverged, _HW, "fixed-people", 8, "c"),
            # ...a late joiner that departs early (mid-cohort BYE).
            (0.6, _config(width=0.3), _HW, "fixed-people", 5, "d"),
        ]
        handle = start_server(
            [], transport=transport, n_clients=len(jobs), idle_timeout_s=60,
            batch=batch,
        )
        try:
            stats = run_churn_processes(handle, jobs, timeout_s=300)
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        for (got, (_, config, _, key, frames, _)) in zip(stats, jobs):
            ref = _reference(config, frames, key)
            assert got.signature(include_label=False) == ref.signature(
                include_label=False
            )
        if batch:
            counters = handle.runtime_report["serve_counters"]
            assert counters["predicts"] == (
                counters["batched_frames"] + counters["deduped_frames"]
                + counters["single_frames"]
            )
            assert counters["cohort_frames"] == counters["predicts"]


class TestAdmissionOverOneConnection:
    def test_pool_of_admitted_sessions_identical_to_inproc_pool(self):
        """N sessions negotiated over ONE shared connection (no
        blueprint table at all) match the in-process pool bitwise."""
        def specs(attach_of=None):
            built = []
            for key, width in [("fixed-people", 0.25), ("moving-animals", 0.3)]:
                config = _config(width=width)
                if attach_of is not None:
                    config = dataclasses.replace(config, attach=attach_of())
                built.append(
                    SessionSpec(video=_video(key), num_frames=8, config=config)
                )
            return built

        local = SessionPool(specs()).run()
        handle = start_server([], transport="shm", n_clients=1,
                              idle_timeout_s=60)
        try:
            remote = SessionPool(specs(attach_of=handle.admit_ticket)).run()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        for a, b in zip(local.stats, remote.stats):
            assert a.signature(include_label=False) == b.signature(
                include_label=False
            )

    def test_mixed_blueprint_and_admitted_population(self):
        """A blueprinted session (HELLO) and an admitted one (ADMIT)
        coexist on one server; the admitted id never collides with the
        blueprint table."""
        blueprinted = _config(width=0.25)
        admitted = _config(width=0.3, mode=DistillMode.FULL)
        handle = start_server(
            [SessionBlueprint(blueprinted, _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60,
        )
        try:
            via_hello = build_session(
                dataclasses.replace(blueprinted, attach=handle.ticket(0)), _HW
            )
            via_admit = build_session(
                dataclasses.replace(admitted, attach=handle.admit_ticket()), _HW
            )
            assert via_hello.server.session == 0
            assert via_admit.server.session == 1  # first id past the table
            try:
                video = _video()
                video.reset()
                hello_stats = via_hello.run(video.frames(6), label="h")
            finally:
                via_hello.server.close()
            try:
                video = _video("moving-animals")
                video.reset()
                admit_stats = via_admit.run(video.frames(6), label="m")
            finally:
                via_admit.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        assert hello_stats.signature(include_label=False) == _reference(
            blueprinted, 6
        ).signature(include_label=False)
        assert admit_stats.signature(include_label=False) == run_shadowtutor(
            _video("moving-animals"), 6, admitted, label="ref"
        ).signature(include_label=False)


class TestCapacityPolicy:
    def test_slot_frees_on_bye_and_admission_resumes(self):
        """max_sessions caps *concurrently open* sessions: a REJECTed
        client can retry successfully after a departure."""
        handle = start_server([], transport="shm", n_clients=1,
                              max_sessions=1, idle_timeout_s=60)
        try:
            first = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()), _HW
            )
            with pytest.raises(AdmissionError, match="capacity") as excinfo:
                build_session(
                    dataclasses.replace(_config(), attach=handle.admit_ticket()),
                    _HW,
                )
            assert excinfo.value.reason == "capacity"
            first.server.close()  # BYE frees the slot
            retry = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()), _HW
            )
            assert retry.server.session == 1  # ids are never reused
            retry.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0

    def test_admission_disabled_server_rejects_admit(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, admit=False, idle_timeout_s=60,
        )
        try:
            with pytest.raises(AdmissionError, match="admission-disabled"):
                build_session(
                    dataclasses.replace(_config(), attach=handle.admit_ticket()),
                    _HW,
                )
            # The blueprinted path still works; serving it lets the
            # runtime quiesce.
            client = build_session(
                dataclasses.replace(_config(), attach=handle.ticket(0)), _HW
            )
            client.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0


class TestAdmissionRetry:
    """ISSUE 6 satellite: typed refusal metadata and the bounded,
    seeded retry loop behind ``admit_retries``."""

    def test_refusals_carry_retry_metadata(self):
        from repro.serving.overload import OverloadConfig

        handle = start_server(
            [], transport="shm", n_clients=1, max_sessions=2,
            idle_timeout_s=60,
            overload=OverloadConfig(admission_rate=0.001,
                                    admission_burst=1.0,
                                    capacity_retry_after=48),
        )
        try:
            occupant = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()),
                _HW,
            )
            # The bucket held one token; the next ADMIT is a typed,
            # retryable refusal with a ticks-until-token hint.
            with pytest.raises(AdmissionError, match="overloaded") as excinfo:
                build_session(
                    dataclasses.replace(_config(), attach=handle.admit_ticket()),
                    _HW,
                )
            assert excinfo.value.reason == "overloaded"
            assert excinfo.value.retryable
            assert excinfo.value.retry_after >= 1
            occupant.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0

    def test_capacity_refusal_is_retryable_disabled_is_not(self):
        handle = start_server([], transport="shm", n_clients=1,
                              max_sessions=1, idle_timeout_s=60)
        try:
            occupant = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()),
                _HW,
            )
            with pytest.raises(AdmissionError, match="capacity") as excinfo:
                build_session(
                    dataclasses.replace(_config(), attach=handle.admit_ticket()),
                    _HW,
                )
            assert excinfo.value.retryable
            assert excinfo.value.retry_after >= 1
            occupant.server.close()
        finally:
            handle.close()
        disabled = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, admit=False, idle_timeout_s=60,
        )
        try:
            with pytest.raises(AdmissionError) as excinfo:
                build_session(
                    dataclasses.replace(
                        _config(), attach=disabled.admit_ticket(admit_retries=5)
                    ),
                    _HW,
                )
            # Structural refusals are NOT retryable: the retry budget
            # must not burn five sleeps on a server that said "never".
            assert excinfo.value.reason == "admission-disabled"
            assert not excinfo.value.retryable
            client = build_session(
                dataclasses.replace(_config(), attach=disabled.ticket(0)), _HW
            )
            client.server.close()
        finally:
            disabled.close()

    def test_bounded_retry_admits_once_occupant_departs(self):
        import threading

        handle = start_server([], transport="shm", n_clients=1,
                              max_sessions=1, idle_timeout_s=60)
        try:
            occupant = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()),
                _HW,
            )
            # Free the slot ~0.5s in; the waiting client's seeded retry
            # loop (capacity hint 64 ticks -> ~0.32s nominal sleeps)
            # must pick the slot up within its bounded budget.
            timer = threading.Timer(0.5, occupant.server.close)
            timer.start()
            try:
                retry = build_session(
                    dataclasses.replace(
                        _config(),
                        attach=handle.admit_ticket(admit_retries=20,
                                                   retry_seed=3),
                    ),
                    _HW,
                )
            finally:
                timer.join()
            assert retry.server.session == 1  # ids are never reused
            retry.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0

    def test_exhausted_retry_budget_raises_the_last_refusal(self):
        handle = start_server([], transport="shm", n_clients=1,
                              max_sessions=1, idle_timeout_s=60)
        try:
            occupant = build_session(
                dataclasses.replace(_config(), attach=handle.admit_ticket()),
                _HW,
            )
            # Nobody ever departs: two retries, then the typed error
            # surfaces — bounded, never an infinite spin.
            with pytest.raises(AdmissionError, match="capacity"):
                build_session(
                    dataclasses.replace(
                        _config(),
                        attach=handle.admit_ticket(admit_retries=2),
                    ),
                    _HW,
                )
            occupant.server.close()
        finally:
            handle.close()
        assert handle.process.exitcode == 0
