"""Tests for the LVS weight map and weighted cross-entropy."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.segmentation.losses import (
    NEAR_RADIUS,
    OBJECT_WEIGHT,
    lvs_weight_map,
    weighted_cross_entropy,
)


class TestWeightMap:
    def test_background_only_all_ones(self):
        label = np.zeros((8, 8), dtype=np.int64)
        np.testing.assert_allclose(lvs_weight_map(label), np.ones((8, 8)))

    def test_object_pixels_upweighted(self):
        label = np.zeros((16, 16), dtype=np.int64)
        label[6:10, 6:10] = 2
        wm = lvs_weight_map(label)
        assert (wm[6:10, 6:10] == OBJECT_WEIGHT).all()

    def test_near_band_upweighted(self):
        label = np.zeros((16, 16), dtype=np.int64)
        label[8, 8] = 1
        wm = lvs_weight_map(label)
        # Dilation radius NEAR_RADIUS: pixels within the band share the weight.
        assert wm[8, 8 + NEAR_RADIUS] == OBJECT_WEIGHT
        assert wm[8, 8 + NEAR_RADIUS + 2] == 1.0

    def test_batched_input(self):
        label = np.zeros((2, 8, 8), dtype=np.int64)
        label[1, 4, 4] = 3
        wm = lvs_weight_map(label)
        assert wm.shape == (2, 8, 8)
        assert wm[0].max() == 1.0
        assert wm[1].max() == OBJECT_WEIGHT

    def test_custom_weight_and_radius(self):
        label = np.zeros((8, 8), dtype=np.int64)
        label[4, 4] = 1
        wm = lvs_weight_map(label, object_weight=3.0, near_radius=0)
        assert wm[4, 4] == 3.0
        assert wm[4, 5] == 1.0

    def test_weights_only_two_levels(self, rng):
        label = rng.integers(0, 9, size=(12, 12))
        wm = lvs_weight_map(label)
        assert set(np.unique(wm)) <= {1.0, OBJECT_WEIGHT}


class TestWeightedCrossEntropy:
    def test_auto_weight_map_applied(self, rng):
        logits = Tensor(rng.normal(size=(1, 9, 8, 8)), requires_grad=True)
        label = np.zeros((8, 8), dtype=np.int64)
        label[2:6, 2:6] = 1
        loss = weighted_cross_entropy(logits, label)
        assert np.isfinite(loss.item())
        loss.backward()
        assert logits.grad is not None

    def test_accepts_2d_and_3d_labels(self, rng):
        logits = Tensor(rng.normal(size=(1, 9, 4, 4)))
        label2d = rng.integers(0, 9, size=(4, 4))
        a = weighted_cross_entropy(logits, label2d).item()
        b = weighted_cross_entropy(logits, label2d[None]).item()
        assert a == pytest.approx(b)

    def test_object_errors_cost_more(self, rng):
        # Same number of wrong pixels: errors on objects cost more than
        # errors on far-away background.
        label = np.zeros((16, 16), dtype=np.int64)
        label[6:10, 6:10] = 1
        base = np.zeros((1, 2, 16, 16), dtype=np.float32)
        base[0, 0] = 5.0  # predict background everywhere

        correct = base.copy()
        correct[0, 1, 6:10, 6:10] = 10.0  # fix the object region
        loss_obj_wrong = weighted_cross_entropy(Tensor(base), label).item()
        loss_correct = weighted_cross_entropy(Tensor(correct), label).item()
        assert loss_obj_wrong > loss_correct * 2
