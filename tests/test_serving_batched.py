"""Engine batch equivalence: compiled ``n > 1`` serving forwards must be
bit-identical to stacking ``n`` single-frame forwards, across every
geometry the student emits (both widths, odd spatial sizes).  This is
the numerical contract the batched predictor and the whole pooled
runtime stand on."""

import numpy as np
import pytest

from repro import engine
from repro.models.student import StudentNet
from repro.serving.batched import BatchedPredictor, BatchedTeacher

#: (height, width) geometries: the experiment default, the fast test
#: size, and odd (non-power-of-two) spatial sizes that force BLAS onto
#: different kernels.
GEOMETRIES = [(32, 48), (64, 96), (36, 44), (20, 28)]
WIDTHS = [0.25, 0.5]


def random_frames(n, hw, seed=7):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 1.0, (n, 3, *hw)).astype(np.float32)


class TestServePlanBitIdentity:
    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("hw", GEOMETRIES)
    @pytest.mark.parametrize("n", [2, 5])
    def test_logits_match_single_frame_plans(self, width, hw, n):
        student = StudentNet(width=width, seed=0)
        student.eval()
        frames = random_frames(n, hw)
        single_plan = student.engine_plan("forward", ((1, 3, *hw),))
        serve_plan = student.engine_plan("serve", ((n, 3, *hw),))
        assert single_plan is not None and serve_plan is not None
        (batched,) = serve_plan.run(frames)
        batched = batched.copy()  # plan buffers are reused across runs
        for i in range(n):
            (single,) = single_plan.run(frames[i : i + 1])
            np.testing.assert_array_equal(
                batched[i], single[0],
                err_msg=f"sample {i} of {n} at {hw}, width {width}",
            )

    @pytest.mark.parametrize("width", WIDTHS)
    @pytest.mark.parametrize("hw", GEOMETRIES)
    def test_predict_batch_matches_stacked_predicts(self, width, hw):
        student = StudentNet(width=width, seed=0)
        student.eval()
        frames = random_frames(6, hw, seed=11)
        singles = np.stack([student.predict(f) for f in frames])
        np.testing.assert_array_equal(student.predict_batch(frames), singles)

    def test_batched_matches_autograd_per_sample(self):
        """The chain closes: batched serve == single plan == autograd."""
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        frames = random_frames(3, (32, 48), seed=3)
        batched = student.predict_batch(frames)
        with engine.disabled():
            autograd = np.stack([student.predict(f) for f in frames])
        np.testing.assert_array_equal(batched, autograd)

    def test_engine_disabled_fallback_is_exact(self):
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        frames = random_frames(4, (32, 48), seed=5)
        with engine.disabled():
            preds = student.predict_batch(frames)
            singles = np.stack([student.predict(f) for f in frames])
        np.testing.assert_array_equal(preds, singles)


class TestPlanCacheCoexistence:
    def test_serve_and_forward_plans_coexist(self):
        """Per-session (n = 1) and pool (n > 1) plans live side by side
        in one module cache under distinct (kind, shapes) keys."""
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        hw = (32, 48)
        p1 = student.engine_plan("forward", ((1, 3, *hw),))
        p4 = student.engine_plan("serve", ((4, 3, *hw),))
        p8 = student.engine_plan("serve", ((8, 3, *hw),))
        assert p1 is not None and p4 is not None and p8 is not None
        assert len({id(p1), id(p4), id(p8)}) == 3
        # Cached: same key returns the same object, no recompilation.
        assert student.engine_plan("forward", ((1, 3, *hw),)) is p1
        assert student.engine_plan("serve", ((4, 3, *hw),)) is p4

    def test_serve_plan_survives_weight_update(self):
        """Serve plans read live weights: an updated student batch-
        predicts with the fresh weights, identically to its own
        fresh single predicts."""
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        frames = random_frames(3, (32, 48), seed=9)
        student.predict_batch(frames)  # compile with the old weights
        state = {
            k: v + 0.01 * np.sign(v) for k, v in student.state_dict().items()
        }
        student.load_state_dict(state)
        singles = np.stack([student.predict(f) for f in frames])
        np.testing.assert_array_equal(student.predict_batch(frames), singles)


class TestBatchedPredictor:
    def _client(self, version, width=0.25):
        class FakeClient:
            def __init__(self, student, weight_version):
                self.student = student
                self.weight_version = weight_version

        student = StudentNet(width=width, seed=0)
        student.eval()
        return FakeClient(student, version)

    def test_groups_by_weight_version(self):
        frames = random_frames(4, (32, 48))
        a = self._client("v1")
        b = self._client("v1")
        c = self._client("v2")
        predictor = BatchedPredictor()
        preds, routes = predictor.predict(
            [(a, frames[0]), (b, frames[1]), (c, frames[2])]
        )
        assert routes[0].startswith("batch:2") and routes[1].startswith("batch:2")
        assert routes[2] == "single"
        assert predictor.counters["batched_frames"] == 2
        assert predictor.counters["single_frames"] == 1

    def test_untracked_versions_never_share(self):
        frames = random_frames(2, (32, 48))
        a = self._client(None)
        b = self._client(None)
        predictor = BatchedPredictor()
        _, routes = predictor.predict([(a, frames[0]), (b, frames[1])])
        assert routes == ["single", "single"]

    def test_duplicate_frames_are_served_once(self):
        frames = random_frames(1, (32, 48))
        clients = [self._client("v1") for _ in range(3)]
        predictor = BatchedPredictor()
        preds, routes = predictor.predict([(c, frames[0]) for c in clients])
        assert sorted(routes) == ["dedup", "dedup", "single"]
        assert predictor.counters["deduped_frames"] == 2
        ref = clients[0].student.predict(frames[0])
        for p in preds:
            np.testing.assert_array_equal(p, ref)

    def test_routes_are_bit_identical_to_self_predict(self):
        frames = random_frames(5, (32, 48))
        clients = [self._client("v1") for _ in range(5)]
        items = [(c, f) for c, f in zip(clients, frames)]
        preds, _ = BatchedPredictor().predict(items)
        for (c, f), p in zip(items, preds):
            np.testing.assert_array_equal(p, c.student.predict(f))

    def test_counters_sum_even_after_midway_exception(self):
        """The route-counter invariant the bench reports depend on:
        ``predicts == batched + deduped + single`` at every point —
        including after an exception aborts a call midway (the old
        code counted a duplicate at gather time, so its representative
        failing left a dedup that never produced a prediction)."""

        class ExplodingStudent:
            def __init__(self, fuse):
                self.fuse = fuse

            def predict(self, frame):
                self.fuse -= 1
                if self.fuse < 0:
                    raise RuntimeError("boom")
                return frame.sum(axis=0)

            def predict_batch(self, frames):
                raise RuntimeError("boom")

        class FakeClient:
            def __init__(self, student, weight_version):
                self.student = student
                self.weight_version = weight_version

        def check(predictor):
            c = predictor.counters
            assert c["predicts"] == (
                c["batched_frames"] + c["deduped_frames"] + c["single_frames"]
            )

        frames = random_frames(2, (8, 12))
        # Duplicates whose representative's predict explodes: no frame
        # may be recorded served.
        student = ExplodingStudent(fuse=0)
        items = [(FakeClient(student, "v1"), frames[0]) for _ in range(3)]
        predictor = BatchedPredictor(batch=False)
        with pytest.raises(RuntimeError, match="boom"):
            predictor.predict(items)
        check(predictor)
        assert predictor.counters["deduped_frames"] == 0

        # A batch run that explodes after some singles resolved.
        student = ExplodingStudent(fuse=1)
        items = [(FakeClient(student, None), frames[0]),
                 (FakeClient(student, "v1"), frames[0]),
                 (FakeClient(student, "v1"), frames[1])]
        predictor = BatchedPredictor()
        with pytest.raises(RuntimeError, match="boom"):
            predictor.predict(items)
        check(predictor)
        assert predictor.counters["predicts"] == 1  # only the None-version single


class TestTeacherBatchInference:
    """TeacherNet's stacked inference is bit-identical per sample."""

    def _teacher_and_frames(self, n=5, hw=(16, 24), width=8):
        from repro.models.teacher import TeacherNet

        rng = np.random.default_rng(11)
        teacher = TeacherNet(width=width, seed=2)
        frames = rng.random((n, 3, *hw))
        return teacher, frames

    def test_infer_batch_matches_per_frame_infer(self):
        teacher, frames = self._teacher_and_frames()
        singles = np.stack([teacher.infer(f) for f in frames])
        np.testing.assert_array_equal(teacher.infer_batch(frames), singles)

    def test_soft_infer_batch_matches_per_frame(self):
        teacher, frames = self._teacher_and_frames(n=3)
        singles = np.stack([teacher.soft_infer(f) for f in frames])
        np.testing.assert_array_equal(teacher.soft_infer_batch(frames), singles)

    def test_engine_disabled_fallback_is_exact(self):
        from repro.models.teacher import TeacherNet

        teacher, frames = self._teacher_and_frames(n=3)
        with_engine = teacher.infer_batch(frames)
        with engine.disabled():
            fallback_teacher = TeacherNet(width=8, seed=2)
            fallback = fallback_teacher.infer_batch(frames)
        np.testing.assert_array_equal(with_engine, fallback)


class TestBatchedTeacher:
    """The runtime-side cohort labeller (gather → batch → scatter)."""

    def _neural(self):
        from repro.models.teacher import TeacherNet

        return TeacherNet(width=8, seed=2)

    def test_cohort_groups_by_teacher_version_and_geometry(self):
        rng = np.random.default_rng(3)
        teacher = self._neural()
        small = [rng.random((3, 16, 24)) for _ in range(2)]
        big = rng.random((3, 32, 48))
        batched = BatchedTeacher()
        labels, routes = batched.infer([
            (teacher, "v1", small[0], None),
            (teacher, "v1", small[1], None),
            (teacher, "v1", big, None),       # other geometry: own route
            (teacher, "v2", small[0], None),  # diverged weights: own route
            (teacher, None, small[1], None),  # broken chain: single path
        ])
        assert routes[0] == routes[1] == "batch:2"
        assert routes[2] == routes[3] == routes[4] == "single"
        for (t, _v, frame, _l), label in zip([
            (teacher, None, small[0], None),
            (teacher, None, small[1], None),
            (teacher, None, big, None),
            (teacher, None, small[0], None),
            (teacher, None, small[1], None),
        ], labels):
            np.testing.assert_array_equal(label, t.infer(frame))
        c = batched.counters
        assert c["predicts"] == 5
        assert c["predicts"] == (
            c["batched_frames"] + c["deduped_frames"] + c["single_frames"]
        )

    def test_duplicate_key_frames_share_one_inference(self):
        rng = np.random.default_rng(4)
        teacher = self._neural()
        frame = rng.random((3, 16, 24))
        batched = BatchedTeacher()
        labels, routes = batched.infer(
            [(teacher, "v1", frame.copy(), None) for _ in range(3)]
        )
        assert sorted(routes) == ["dedup", "dedup", "single"]
        assert batched.counters["deduped_frames"] == 2
        ref = teacher.infer(frame)
        for label in labels:
            np.testing.assert_array_equal(label, ref)

    def test_oracle_without_infer_batch_serves_per_item(self):
        from repro.models.teacher import OracleTeacher

        rng = np.random.default_rng(5)
        teacher = OracleTeacher()
        frames = [rng.random((3, 8, 12)) for _ in range(2)]
        labels_in = [rng.integers(0, 4, (8, 12)) for _ in range(2)]
        batched = BatchedTeacher()
        labels, routes = batched.infer([
            (teacher, "v1", frames[0], labels_in[0]),
            (teacher, "v1", frames[1], labels_in[1]),
        ])
        assert routes == ["single", "single"]
        assert batched.counters["batch_runs"] == 0
        for got, want in zip(labels, labels_in):
            np.testing.assert_array_equal(got, want)

    def test_label_rides_the_dedup_key(self):
        """Equal frames with different labels must not share an
        inference (the oracle's output depends on the label)."""
        from repro.models.teacher import OracleTeacher

        rng = np.random.default_rng(6)
        teacher = OracleTeacher()
        frame = rng.random((3, 8, 12))
        la, lb = (rng.integers(0, 4, (8, 12)) for _ in range(2))
        batched = BatchedTeacher()
        labels, routes = batched.infer([
            (teacher, "v1", frame.copy(), la),
            (teacher, "v1", frame.copy(), lb),
        ])
        assert routes == ["single", "single"]
        np.testing.assert_array_equal(labels[0], la)
        np.testing.assert_array_equal(labels[1], lb)

    def test_counters_sum_even_after_midway_exception(self):
        class ExplodingTeacher:
            def infer(self, frame, label=None):
                raise RuntimeError("boom")

        teacher = ExplodingTeacher()
        frame = np.ones((3, 8, 12))
        batched = BatchedTeacher()
        with pytest.raises(RuntimeError, match="boom"):
            batched.infer([(teacher, "v1", frame, None)] * 3)
        c = batched.counters
        assert c["predicts"] == 0
        assert c["deduped_frames"] == 0
