"""Tests for the frame codec cost model."""

import numpy as np
import pytest

from repro.video.codec import (
    CodecModel,
    delta_code_bytes,
    intra_code_bytes,
    quantize,
)
from repro.video.generator import SyntheticVideo, VideoConfig


class TestQuantize:
    def test_range(self, rng):
        q = quantize(rng.random((3, 8, 8)), levels=16)
        assert q.min() >= 0 and q.max() <= 15

    def test_clips_out_of_range(self):
        q = quantize(np.array([-1.0, 2.0]), levels=8)
        np.testing.assert_array_equal(q, [0, 7])

    def test_levels_validated(self):
        with pytest.raises(ValueError):
            quantize(np.zeros(4), levels=1)


class TestIntraCoding:
    def test_constant_frame_tiny(self):
        size = intra_code_bytes(np.full((3, 32, 32), 0.5))
        assert size <= 8  # single symbol -> ~zero entropy

    def test_noise_frame_large(self, rng):
        noise = rng.random((3, 32, 32))
        assert intra_code_bytes(noise) > 100 * intra_code_bytes(
            np.full((3, 32, 32), 0.5)
        )

    def test_more_levels_cost_more_for_noise(self, rng):
        noise = rng.random((3, 32, 32)).astype(np.float32)
        assert intra_code_bytes(noise, levels=256) > intra_code_bytes(
            noise, levels=8
        )


class TestDeltaCoding:
    def test_identical_frames_near_free(self, rng):
        frame = rng.random((3, 16, 16))
        assert delta_code_bytes(frame, frame) <= 8

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            delta_code_bytes(rng.random((3, 8, 8)), rng.random((3, 8, 9)))

    def test_coherent_video_delta_beats_intra(self):
        # Temporal coherence: coding against the previous frame is much
        # cheaper than coding from scratch — the property a real system
        # would exploit on the uplink.
        video = SyntheticVideo(VideoConfig(seed=5, height=32, width=48,
                                           num_objects=2, speed=0.4))
        frames = [f.copy() for f, _ in video.frames(2)]
        intra = intra_code_bytes(frames[1])
        delta = delta_code_bytes(frames[1], frames[0])
        assert delta < 0.6 * intra

    def test_scene_cut_delta_expensive(self):
        video_a = SyntheticVideo(VideoConfig(seed=1, height=32, width=48))
        video_b = SyntheticVideo(VideoConfig(seed=2, height=32, width=48))
        frame_a = next(iter(video_a.frames(1)))[0]
        frame_b = next(iter(video_b.frames(1)))[0]
        coherent_ref = frame_a + 0.001
        assert delta_code_bytes(frame_a, frame_b) > delta_code_bytes(
            frame_a, coherent_ref
        )


class TestCodecModel:
    def test_ratio_below_one_for_structured_frames(self):
        video = SyntheticVideo(VideoConfig(seed=3, height=32, width=48))
        frame = next(iter(video.frames(1)))[0]
        model = CodecModel()
        assert 0.0 < model.compression_ratio(frame) < 1.0

    def test_compressed_size_scales_raw(self):
        video = SyntheticVideo(VideoConfig(seed=3, height=32, width=48))
        frames = [f.copy() for f, _ in video.frames(2)]
        model = CodecModel()
        intra = model.compressed_frame_bytes(frames[1])
        delta = model.compressed_frame_bytes(frames[1], frames[0])
        assert delta < intra < model.raw_bytes

    def test_uplink_saving_is_substantial(self):
        # The headline question: how much could key-frame compression
        # shrink the paper's 2.637 MB uplink?  Intra coding of the
        # structured frames saves meaningfully at 64 levels; delta
        # coding against the previous frame saves over 2x.
        video = SyntheticVideo(VideoConfig(seed=4, height=64, width=96,
                                           num_objects=3))
        frames = [f.copy() for f, _ in video.frames(2)]
        model = CodecModel()
        assert model.compressed_frame_bytes(frames[1]) < 0.85 * model.raw_bytes
        assert model.compressed_frame_bytes(
            frames[1], frames[0]
        ) < 0.5 * model.raw_bytes
