"""Tests for weight initialisation schemes."""

import numpy as np
import pytest

from repro.nn.init import _fan_in_out, kaiming_normal, xavier_uniform


class TestFanComputation:
    def test_linear_shape(self):
        fan_in, fan_out = _fan_in_out((8, 4))  # (out, in)
        assert fan_in == 4 and fan_out == 8

    def test_conv_shape(self):
        fan_in, fan_out = _fan_in_out((16, 3, 3, 3))
        assert fan_in == 3 * 9 and fan_out == 16 * 9

    def test_unsupported_shape_rejected(self):
        with pytest.raises(ValueError):
            _fan_in_out((4,))


class TestKaiming:
    def test_std_matches_he_formula(self, rng):
        w = kaiming_normal(rng, (64, 32, 3, 3))
        expected = np.sqrt(2.0 / (32 * 9))
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_zero_mean(self, rng):
        w = kaiming_normal(rng, (64, 64, 3, 3))
        assert abs(w.mean()) < 0.01

    def test_dtype_float32(self, rng):
        assert kaiming_normal(rng, (4, 4)).dtype == np.float32

    def test_deterministic_given_rng(self):
        a = kaiming_normal(np.random.default_rng(3), (8, 8))
        b = kaiming_normal(np.random.default_rng(3), (8, 8))
        np.testing.assert_array_equal(a, b)


class TestXavier:
    def test_bound_matches_glorot_formula(self, rng):
        w = xavier_uniform(rng, (100, 50))
        bound = np.sqrt(6.0 / (100 + 50))
        assert w.min() >= -bound and w.max() <= bound
        # Uniform over [-b, b]: std = b / sqrt(3).
        assert w.std() == pytest.approx(bound / np.sqrt(3), rel=0.1)

    def test_conv_shape_supported(self, rng):
        w = xavier_uniform(rng, (8, 4, 3, 3))
        assert w.shape == (8, 4, 3, 3)
        assert w.dtype == np.float32
