"""Tests for trace-driven link shaping.

Traces validate and compile into ``DynamicNetworkModel`` schedules;
the generator is deterministic per seed; the bundled scenarios exist;
``ShapedEndpoint`` replays a trace over a real transport (driven here
by an injected fake clock, so the test is deterministic).
"""

import numpy as np
import pytest

from repro.network.dynamic import DynamicNetworkModel
from repro.transport.link import (
    BUNDLED_TRACES,
    LinkTrace,
    ShapedEndpoint,
    bundled_trace,
    generate_trace,
    lte_trace,
    wifi_trace,
)
from repro.transport.shm import spawn_shm_pair


class TestLinkTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkTrace("empty", ())
        with pytest.raises(ValueError):
            LinkTrace("late-start", ((1.0, 10.0),))
        with pytest.raises(ValueError):
            LinkTrace("unsorted", ((0.0, 10.0), (2.0, 5.0), (1.0, 8.0)))
        with pytest.raises(ValueError):
            LinkTrace("nonpositive", ((0.0, 0.0),))

    def test_bandwidth_lookup(self):
        trace = LinkTrace("t", ((0.0, 10.0), (5.0, 2.0), (10.0, 40.0)))
        assert trace.bandwidth_at(0.0) == 10.0
        assert trace.bandwidth_at(4.9) == 10.0
        assert trace.bandwidth_at(5.0) == 2.0
        assert trace.bandwidth_at(99.0) == 40.0  # clamped past the end
        assert trace.min_mbps == 2.0
        assert trace.duration_s == 10.0

    def test_compiles_to_dynamic_network_model(self):
        trace = LinkTrace("t", ((0.0, 10.0), (5.0, 2.0)), base_latency_s=0.004)
        model = trace.to_network_model()
        assert isinstance(model, DynamicNetworkModel)
        assert model.base_latency_s == 0.004
        for t in (0.0, 3.0, 5.0, 7.5):
            assert model.bandwidth_at(t) == trace.bandwidth_at(t)
        # A transfer spanning the drop takes longer than at the first
        # rate and shorter than at the dropped rate.
        nbytes = 10_000_000  # 80 Mb: 8 s at 10 Mbps, 40 s at 2 Mbps
        duration = model.transfer_time(nbytes, now=0.0)
        assert 8.0 < duration < 40.0 + model.base_latency_s

    def test_generator_deterministic_per_seed(self):
        a = generate_trace("g", seed=5)
        b = generate_trace("g", seed=5)
        c = generate_trace("g", seed=6)
        assert a.samples == b.samples
        assert a.samples != c.samples

    def test_generator_respects_bounds(self):
        trace = generate_trace(
            "bounded", duration_s=400.0, floor_mbps=5.0, ceil_mbps=50.0,
            dip_probability=0.2, dip_mbps=6.0, seed=1,
        )
        bws = [bw for _, bw in trace.samples]
        assert min(bws) >= 5.0
        assert max(bws) <= 50.0

    def test_bundled_traces(self):
        assert set(BUNDLED_TRACES) == {"lte-drive", "wifi-cafe"}
        for trace in BUNDLED_TRACES.values():
            trace.to_network_model()  # compiles cleanly
        assert bundled_trace("lte-drive").samples == lte_trace().samples
        assert bundled_trace("wifi-cafe").samples == wifi_trace().samples
        with pytest.raises(KeyError, match="lte-drive"):
            bundled_trace("5g-lab")
        # The LTE scenario is genuinely harsher than the Wi-Fi one.
        assert bundled_trace("lte-drive").min_mbps < bundled_trace("wifi-cafe").min_mbps


class _FakeTime:
    """Deterministic clock: sleep() advances it exactly."""

    def __init__(self) -> None:
        self.now = 100.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.now += dt


class TestShapedEndpoint:
    def _shaped_pair(self, trace, fake):
        # Slots sized so the 1 MB test payload fits the ring with both
        # endpoints on one thread (see spawn_shm_pair's note).
        a, b = spawn_shm_pair(slots=4, slot_nbytes=1 << 20, timeout_s=5.0)
        shaped = ShapedEndpoint(b, trace, clock=fake.clock, sleep=fake.sleep)
        return a, b, shaped

    def test_recv_held_for_modeled_transfer_time(self):
        from repro.transport import wire

        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 8.0),), base_latency_s=0.0)  # 1 MB/s
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            payload = np.zeros(1_000_000, np.uint8)
            nbytes = wire.encoded_nbytes(payload)
            a.send(payload, payload.nbytes)
            before = fake.now
            out = shaped.recv()
            assert out.tobytes() == payload.tobytes()
            # 8 Mbps moves the measured wire bytes in nbytes*8/8e6 s.
            assert fake.now - before == pytest.approx(nbytes * 8 / 8e6)
        finally:
            b.close(), a.close()

    def test_irecv_not_ready_before_modeled_delivery(self):
        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 8.0),), base_latency_s=0.0)
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            req = shaped.irecv()
            assert not req.test()              # nothing sent yet
            payload = np.zeros(1_000_000, np.uint8)
            a.send(payload, payload.nbytes)
            assert not req.test()              # arrived, but link still "busy"
            fake.now += 0.5                    # < ~1.0 s modeled transfer
            assert not req.test()
            fake.now += 0.6
            assert req.test()
            assert req.payload().tobytes() == payload.tobytes()
        finally:
            b.close(), a.close()

    def test_sends_pass_through_unshaped(self):
        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 1.0),), base_latency_s=0.0)  # slow link
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            shaped.send(np.ones(4, np.float32), 16)  # shaped side sends freely
            assert fake.sleeps == []
            a.recv()
        finally:
            b.close(), a.close()

    def test_requires_size_measuring_transport(self):
        from repro.comm.mp import spawn_pipe_pair

        a, b = spawn_pipe_pair()
        trace = LinkTrace("t", ((0.0, 1.0),))
        with pytest.raises(TypeError):
            ShapedEndpoint(a, trace)
        a.close(), b.close()


class TestAsymmetricPairs:
    """Per-direction traces (ISSUE 4): uplink and downlink differ."""

    def test_bundled_pair_compiles_and_is_asymmetric(self):
        from repro.transport.link import (
            BUNDLED_TRACE_PAIRS,
            bundled_trace_pair,
            lte_updown_pair,
        )

        assert set(BUNDLED_TRACE_PAIRS) == {"lte-updown"}
        pair = bundled_trace_pair("lte-updown")
        assert pair.up.samples == lte_updown_pair().up.samples
        with pytest.raises(KeyError, match="lte-updown"):
            bundled_trace_pair("starlink")
        # The scenario's point: uplink is the slow direction.
        assert pair.up.mean_mbps < pair.down.mean_mbps

    def test_compiled_model_is_direction_aware(self):
        from repro.transport.link import LinkTracePair

        pair = LinkTracePair(
            "t",
            up=LinkTrace("up", ((0.0, 8.0),), base_latency_s=0.0),
            down=LinkTrace("down", ((0.0, 80.0),), base_latency_s=0.0),
        )
        model = pair.to_network_model()
        nbytes = 1_000_000
        up_s = model.for_direction("up").transfer_time(nbytes, 0.0)
        down_s = model.for_direction("down").transfer_time(nbytes, 0.0)
        assert up_s == pytest.approx(10 * down_s)
        # Direction-oblivious consumers get the conservative uplink.
        assert model.transfer_time(nbytes, 0.0) == up_s
        assert model.round_trip_time(nbytes, nbytes) == pytest.approx(up_s + down_s)
        with pytest.raises(ValueError, match="direction"):
            model.for_direction("sideways")

    def test_client_timing_consumes_the_asymmetry(self):
        """A simulated run over the pair differs from its mirror: the
        binding direction matters, so both traces are really consumed."""
        from repro.distill.config import DistillConfig
        from repro.runtime.session import SessionConfig, run_shadowtutor
        from repro.transport.link import LinkTracePair
        from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

        pair = LinkTracePair(
            "t",
            up=LinkTrace("up", ((0.0, 4.0),), base_latency_s=0.0),
            down=LinkTrace("down", ((0.0, 80.0),), base_latency_s=0.0),
        )

        def run(network):
            video = make_category_video(
                CATEGORY_BY_KEY["fixed-people"], height=32, width=48
            )
            config = SessionConfig(
                distill=DistillConfig(max_updates=4, threshold=0.7,
                                      min_stride=4, max_stride=16),
                student_width=0.25, pretrain_steps=10, network=network,
            )
            return run_shadowtutor(video, 16, config, label="t")

        slow_up = run(pair.to_network_model())
        slow_down = run(pair.swapped().to_network_model())
        assert slow_up.total_time_s != slow_down.total_time_s
        # Identical serving decisions either way — only timing moves.
        assert slow_up.num_key_frames >= 1

    def test_shape_endpoint_pair_shapes_each_direction(self):
        from repro.transport import wire
        from repro.transport.link import LinkTracePair, shape_endpoint_pair

        fake = _FakeTime()
        pair = LinkTracePair(
            "t",
            up=LinkTrace("up", ((0.0, 8.0),), base_latency_s=0.0),     # 1 MB/s
            down=LinkTrace("down", ((0.0, 80.0),), base_latency_s=0.0),  # 10 MB/s
        )
        client_ep, server_ep = spawn_shm_pair(
            slots=4, slot_nbytes=1 << 20, timeout_s=5.0
        )
        shaped_client, shaped_server = shape_endpoint_pair(
            client_ep, server_ep, pair, clock=fake.clock, sleep=fake.sleep
        )
        try:
            payload = np.zeros(1_000_000, np.uint8)
            nbytes = wire.encoded_nbytes(payload)

            # Uplink (client -> server) held at the slow uplink rate.
            shaped_client.send(payload, payload.nbytes)
            before = fake.now
            shaped_server.recv()
            assert fake.now - before == pytest.approx(nbytes * 8 / 8e6)

            # Downlink (server -> client) held at the fast downlink rate.
            shaped_server.send(payload, payload.nbytes)
            before = fake.now
            shaped_client.recv()
            assert fake.now - before == pytest.approx(nbytes * 8 / 80e6)
        finally:
            server_ep.close(), client_ep.close()
