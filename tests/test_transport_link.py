"""Tests for trace-driven link shaping.

Traces validate and compile into ``DynamicNetworkModel`` schedules;
the generator is deterministic per seed; the bundled scenarios exist;
``ShapedEndpoint`` replays a trace over a real transport (driven here
by an injected fake clock, so the test is deterministic).
"""

import numpy as np
import pytest

from repro.network.dynamic import DynamicNetworkModel
from repro.transport.link import (
    BUNDLED_TRACES,
    LinkTrace,
    ShapedEndpoint,
    bundled_trace,
    generate_trace,
    lte_trace,
    wifi_trace,
)
from repro.transport.shm import spawn_shm_pair


class TestLinkTrace:
    def test_validation(self):
        with pytest.raises(ValueError):
            LinkTrace("empty", ())
        with pytest.raises(ValueError):
            LinkTrace("late-start", ((1.0, 10.0),))
        with pytest.raises(ValueError):
            LinkTrace("unsorted", ((0.0, 10.0), (2.0, 5.0), (1.0, 8.0)))
        with pytest.raises(ValueError):
            LinkTrace("nonpositive", ((0.0, 0.0),))

    def test_bandwidth_lookup(self):
        trace = LinkTrace("t", ((0.0, 10.0), (5.0, 2.0), (10.0, 40.0)))
        assert trace.bandwidth_at(0.0) == 10.0
        assert trace.bandwidth_at(4.9) == 10.0
        assert trace.bandwidth_at(5.0) == 2.0
        assert trace.bandwidth_at(99.0) == 40.0  # clamped past the end
        assert trace.min_mbps == 2.0
        assert trace.duration_s == 10.0

    def test_compiles_to_dynamic_network_model(self):
        trace = LinkTrace("t", ((0.0, 10.0), (5.0, 2.0)), base_latency_s=0.004)
        model = trace.to_network_model()
        assert isinstance(model, DynamicNetworkModel)
        assert model.base_latency_s == 0.004
        for t in (0.0, 3.0, 5.0, 7.5):
            assert model.bandwidth_at(t) == trace.bandwidth_at(t)
        # A transfer spanning the drop takes longer than at the first
        # rate and shorter than at the dropped rate.
        nbytes = 10_000_000  # 80 Mb: 8 s at 10 Mbps, 40 s at 2 Mbps
        duration = model.transfer_time(nbytes, now=0.0)
        assert 8.0 < duration < 40.0 + model.base_latency_s

    def test_generator_deterministic_per_seed(self):
        a = generate_trace("g", seed=5)
        b = generate_trace("g", seed=5)
        c = generate_trace("g", seed=6)
        assert a.samples == b.samples
        assert a.samples != c.samples

    def test_generator_respects_bounds(self):
        trace = generate_trace(
            "bounded", duration_s=400.0, floor_mbps=5.0, ceil_mbps=50.0,
            dip_probability=0.2, dip_mbps=6.0, seed=1,
        )
        bws = [bw for _, bw in trace.samples]
        assert min(bws) >= 5.0
        assert max(bws) <= 50.0

    def test_bundled_traces(self):
        assert set(BUNDLED_TRACES) == {"lte-drive", "wifi-cafe"}
        for trace in BUNDLED_TRACES.values():
            trace.to_network_model()  # compiles cleanly
        assert bundled_trace("lte-drive").samples == lte_trace().samples
        assert bundled_trace("wifi-cafe").samples == wifi_trace().samples
        with pytest.raises(KeyError, match="lte-drive"):
            bundled_trace("5g-lab")
        # The LTE scenario is genuinely harsher than the Wi-Fi one.
        assert bundled_trace("lte-drive").min_mbps < bundled_trace("wifi-cafe").min_mbps


class _FakeTime:
    """Deterministic clock: sleep() advances it exactly."""

    def __init__(self) -> None:
        self.now = 100.0
        self.sleeps = []

    def clock(self) -> float:
        return self.now

    def sleep(self, dt: float) -> None:
        self.sleeps.append(dt)
        self.now += dt


class TestShapedEndpoint:
    def _shaped_pair(self, trace, fake):
        # Slots sized so the 1 MB test payload fits the ring with both
        # endpoints on one thread (see spawn_shm_pair's note).
        a, b = spawn_shm_pair(slots=4, slot_nbytes=1 << 20, timeout_s=5.0)
        shaped = ShapedEndpoint(b, trace, clock=fake.clock, sleep=fake.sleep)
        return a, b, shaped

    def test_recv_held_for_modeled_transfer_time(self):
        from repro.transport import wire

        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 8.0),), base_latency_s=0.0)  # 1 MB/s
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            payload = np.zeros(1_000_000, np.uint8)
            nbytes = wire.encoded_nbytes(payload)
            a.send(payload, payload.nbytes)
            before = fake.now
            out = shaped.recv()
            assert out.tobytes() == payload.tobytes()
            # 8 Mbps moves the measured wire bytes in nbytes*8/8e6 s.
            assert fake.now - before == pytest.approx(nbytes * 8 / 8e6)
        finally:
            b.close(), a.close()

    def test_irecv_not_ready_before_modeled_delivery(self):
        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 8.0),), base_latency_s=0.0)
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            req = shaped.irecv()
            assert not req.test()              # nothing sent yet
            payload = np.zeros(1_000_000, np.uint8)
            a.send(payload, payload.nbytes)
            assert not req.test()              # arrived, but link still "busy"
            fake.now += 0.5                    # < ~1.0 s modeled transfer
            assert not req.test()
            fake.now += 0.6
            assert req.test()
            assert req.payload().tobytes() == payload.tobytes()
        finally:
            b.close(), a.close()

    def test_sends_pass_through_unshaped(self):
        fake = _FakeTime()
        trace = LinkTrace("t", ((0.0, 1.0),), base_latency_s=0.0)  # slow link
        a, b, shaped = self._shaped_pair(trace, fake)
        try:
            shaped.send(np.ones(4, np.float32), 16)  # shaped side sends freely
            assert fake.sleeps == []
            a.recv()
        finally:
            b.close(), a.close()

    def test_requires_size_measuring_transport(self):
        from repro.comm.mp import spawn_pipe_pair

        a, b = spawn_pipe_pair()
        trace = LinkTrace("t", ((0.0, 1.0),))
        with pytest.raises(TypeError):
            ShapedEndpoint(a, trace)
        a.close(), b.close()
