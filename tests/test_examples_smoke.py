"""Smoke tests: every example script must run end-to-end at a tiny
scale.  Guards the examples against API drift."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=600):
    """Execute an example as a subprocess, returning its stdout."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "--frames", "40", "--width", "0.25")
        assert "ShadowTutor" in out
        assert "throughput improvement" in out

    def test_autonomous_driving(self):
        out = run_example("autonomous_driving.py", "--frames", "30")
        assert "ShadowTutor FPS" in out
        # Four bandwidth rows printed.
        assert out.count("Mb |") == 4

    def test_cctv_monitor(self):
        out = run_example("cctv_monitor.py", "--frames", "40")
        assert "recorded 28 FPS" in out
        assert "real-time 7 FPS" in out

    def test_two_process_demo(self):
        out = run_example("two_process_demo.py", "--frames", "30")
        assert "received initial student" in out
        assert "exited with code 0" in out

    def test_two_process_demo_multiplexed(self):
        out = run_example("two_process_demo.py", "--frames", "16",
                          "--transport", "shm", "--clients", "2")
        assert "multiplexing server" in out
        assert "2 client processes" in out
        assert "exited with code 0" in out

    def test_two_process_demo_late_joiners(self):
        out = run_example("two_process_demo.py", "--frames", "12",
                          "--transport", "shm", "--clients", "2",
                          "--late-joiners", "1")
        assert "ADMITted over the wire" in out
        assert "1 joining late" in out
        assert "exited with code 0" in out

    def test_sequence_extension(self):
        out = run_example("sequence_extension.py", "--windows", "200")
        assert "tutored accuracy" in out
        assert "wild accuracy" in out

    def test_inspect_run(self, tmp_path):
        out = run_example("inspect_run.py", "--frames", "40",
                          "--out", str(tmp_path))
        assert "contact sheet" in out
        assert "stride over the stream" in out
        assert "residual error" in out
        assert (tmp_path / "moving-animals.ppm").exists()
