"""Tests for the experiment harness (tiny scale for speed)."""

import numpy as np
import pytest

from repro.experiments.configs import ExperimentScale, PAPER_REFERENCE, default_scale
from repro.experiments.figures import figure4_bandwidth_sweep
from repro.experiments.report import format_table, render_experiments_md
from repro.experiments.tables import (
    TableResult,
    table4_data_per_keyframe,
)

TINY = ExperimentScale(num_frames=40, student_width=0.25, pretrain_steps=5,
                       frame_height=32, frame_width=48)


class TestConfigs:
    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FRAMES", "123")
        monkeypatch.setenv("REPRO_WIDTH", "0.75")
        scale = default_scale()
        assert scale.num_frames == 123
        assert scale.student_width == 0.75

    def test_paper_reference_complete(self):
        for table in ("table2", "table3", "table4", "table5", "table6",
                      "table7", "figure4", "bounds"):
            assert table in PAPER_REFERENCE

    def test_paper_reference_seven_categories(self):
        for table in ("table3", "table5", "table6", "table7"):
            rows = PAPER_REFERENCE[table]
            assert len([k for k in rows if k != "average"]) == 7


class TestTable4:
    def test_matches_paper_exactly(self):
        # Table 4 is configuration, not simulation: it must match.
        result = table4_data_per_keyframe()
        assert result.rows["partial"]["to_client_mb"] == pytest.approx(0.395, abs=1e-3)
        assert result.rows["full"]["to_client_mb"] == pytest.approx(1.846, abs=1e-3)
        assert result.rows["naive"]["to_client_mb"] == pytest.approx(0.879, abs=1e-3)
        assert result.rows["partial"]["total_mb"] == pytest.approx(3.032, abs=2e-3)

    def test_partial_lightest_roundtrip(self):
        rows = table4_data_per_keyframe().rows
        assert rows["partial"]["total_mb"] < rows["naive"]["total_mb"]
        assert rows["naive"]["total_mb"] < rows["full"]["total_mb"]


class TestFigure4Tiny:
    def test_sweep_structure(self):
        result = figure4_bandwidth_sweep(
            scale=TINY, bandwidths=[8, 80], videos=["softball"]
        )
        assert result.bandwidths_mbps == [8.0, 80.0]
        assert set(result.series) == {"softball", "naive"}
        assert len(result.series["softball"]) == 2
        assert len(result.bounds) == 2

    def test_naive_monotone_in_bandwidth(self):
        result = figure4_bandwidth_sweep(
            scale=TINY, bandwidths=[8, 80], videos=["softball"]
        )
        assert result.series["naive"][1] > result.series["naive"][0]

    def test_shadowtutor_beats_naive_at_all_bandwidths(self):
        result = figure4_bandwidth_sweep(
            scale=TINY, bandwidths=[8, 80], videos=["softball"]
        )
        for st, nv in zip(result.series["softball"], result.series["naive"]):
            assert st > nv


class TestTableResult:
    def test_averages(self):
        result = TableResult(
            name="t", paper={},
            rows={"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 4.0}},
        )
        assert result.averages() == {"x": 2.0, "y": 3.0}


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("Title", {"row1": {"colA": 1.234, "colB": 5.0}})
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "colA" in lines[1] and "colB" in lines[1]
        assert "1.23" in text and "5.00" in text

    def test_format_empty(self):
        assert "(empty)" in format_table("T", {})

    def test_render_md(self):
        out = render_experiments_md(["a", "b"])
        assert out == "a\n\nb\n"
