"""Tests for SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam


def quadratic_step(opt, p, target=0.0):
    """One optimisation step on loss = (p - target)^2."""
    opt.zero_grad()
    loss = ((p - target) ** 2).sum()
    loss.backward()
    opt.step()
    return loss.item()


class TestSGD:
    def test_plain_update_rule(self):
        p = Parameter(np.array([2.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        quadratic_step(opt, p)
        # grad of p^2 at 2 is 4; p <- 2 - 0.1*4 = 1.6
        np.testing.assert_allclose(p.data, [1.6], rtol=1e-6)

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p], lr=0.1, momentum=0.9)
        quadratic_step(opt, p)  # v=2.0, p = 1 - 0.2 = 0.8
        quadratic_step(opt, p)  # v=0.9*2 + 1.6 = 3.4, p = 0.8 - 0.34
        np.testing.assert_allclose(p.data, [0.46], rtol=1e-5)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0], dtype=np.float32))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            quadratic_step(opt, p, target=3.0)
        np.testing.assert_allclose(p.data, [3.0], atol=1e-3)

    def test_skips_frozen_params(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        q = Parameter(np.array([1.0], dtype=np.float32))
        opt = SGD([p, q], lr=0.1)
        q.freeze()
        opt.zero_grad()
        ((p * q) ** 2).sum().backward()
        opt.step()
        np.testing.assert_allclose(q.data, [1.0])
        assert p.data[0] != 1.0

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_step_without_backward_is_noop(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])


class TestAdam:
    def test_first_step_size_is_lr(self):
        # Adam's bias correction makes the first step ~lr * sign(grad).
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        quadratic_step(opt, p)
        np.testing.assert_allclose(p.data, [0.99], atol=1e-5)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([4.0], dtype=np.float32))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            quadratic_step(opt, p, target=-1.0)
        np.testing.assert_allclose(p.data, [-1.0], atol=1e-2)

    def test_reset_state_clears_moments(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        quadratic_step(opt, p)
        assert opt.state
        opt.reset_state()
        assert not opt.state

    def test_per_param_state_isolated(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        q = Parameter(np.array([2.0], dtype=np.float32))
        opt = Adam([p, q], lr=0.01)
        opt.zero_grad()
        (p**2).sum().backward()  # only p has a grad
        opt.step()
        assert id(q) not in opt.state
        assert id(p) in opt.state

    def test_frozen_param_untouched(self):
        p = Parameter(np.array([1.0], dtype=np.float32))
        opt = Adam([p], lr=0.01)
        opt.zero_grad()
        (p**2).sum().backward()
        p.freeze()
        opt.step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_multidim_params(self, rng):
        p = Parameter(rng.normal(size=(3, 4)).astype(np.float32))
        opt = Adam([p], lr=0.05)
        for _ in range(200):
            opt.zero_grad()
            (p**2).sum().backward()
            opt.step()
        np.testing.assert_allclose(p.data, np.zeros((3, 4)), atol=5e-2)
