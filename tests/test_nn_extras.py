"""Tests for Linear, Dropout, MaxPool2d and GroupNorm2d."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn.extras import Dropout, GroupNorm2d, Linear, MaxPool2d

from tests.helpers import assert_grad_close, numeric_gradient


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 5))))
        assert out.shape == (4, 3)

    def test_no_bias(self, rng):
        layer = Linear(5, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_matches_manual(self, rng):
        layer = Linear(4, 2, rng=rng)
        x = rng.normal(size=(3, 4)).astype(np.float32)
        out = layer(Tensor(x)).data
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_gradients(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        (layer(x) ** 2).sum().backward()

        def f():
            return float((layer(Tensor(x.data)).data ** 2).sum())

        assert_grad_close(x.grad, numeric_gradient(x, f))

    def test_trains_to_fit_line(self, rng):
        from repro.nn.optim import Adam

        layer = Linear(1, 1, rng=rng)
        opt = Adam(layer.parameters(), lr=0.1)
        xs = rng.normal(size=(32, 1)).astype(np.float32)
        ys = 3.0 * xs + 1.0
        for _ in range(200):
            opt.zero_grad()
            loss = ((layer(Tensor(xs)) - Tensor(ys)) ** 2).mean()
            loss.backward()
            opt.step()
        assert layer.weight.data[0, 0] == pytest.approx(3.0, abs=0.1)
        assert layer.bias.data[0] == pytest.approx(1.0, abs=0.1)


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5)
        layer.eval()
        x = Tensor(rng.normal(size=(100,)))
        assert layer(x) is x

    def test_p_zero_is_identity(self, rng):
        layer = Dropout(0.0)
        x = Tensor(rng.normal(size=(10,)))
        assert layer(x) is x

    def test_train_zeroes_fraction(self):
        layer = Dropout(0.5, seed=0)
        x = Tensor(np.ones(10_000, dtype=np.float32))
        out = layer(x)
        dropped = (out.data == 0).mean()
        assert dropped == pytest.approx(0.5, abs=0.03)

    def test_inverted_scaling_preserves_mean(self):
        layer = Dropout(0.3, seed=1)
        x = Tensor(np.ones(100_000, dtype=np.float32))
        out = layer(x)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_invalid_p_rejected(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_gradient_masked(self):
        layer = Dropout(0.5, seed=2)
        x = Tensor(np.ones(1000, dtype=np.float32), requires_grad=True)
        out = layer(x)
        out.sum().backward()
        # Gradient is zero exactly where activations were dropped.
        np.testing.assert_array_equal(x.grad == 0, out.data == 0)


class TestMaxPool2d:
    def test_forward_values(self):
        x = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = MaxPool2d(2)(x)
        np.testing.assert_allclose(out.data[0, 0], [[5, 7], [13, 15]])

    def test_backward_routes_to_max(self):
        data = np.zeros((1, 1, 2, 2), dtype=np.float32)
        data[0, 0, 1, 1] = 5.0
        x = Tensor(data, requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        expected = np.zeros((1, 1, 2, 2))
        expected[0, 0, 1, 1] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_ties_split_gradient(self):
        x = Tensor(np.ones((1, 1, 2, 2), dtype=np.float32), requires_grad=True)
        MaxPool2d(2)(x).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 1, 2, 2), 0.25))

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError):
            MaxPool2d(2)(Tensor(rng.normal(size=(1, 1, 5, 4))))

    def test_numeric_gradient(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        (MaxPool2d(2)(x) ** 2).sum().backward()

        def f():
            return float((MaxPool2d(2)(Tensor(x.data)).data ** 2).sum())

        assert_grad_close(x.grad, numeric_gradient(x, f))


class TestGroupNorm:
    def test_normalises_within_groups(self, rng):
        gn = GroupNorm2d(2, 4)
        x = Tensor(rng.normal(3.0, 2.0, size=(2, 4, 5, 5)))
        out = gn(x)
        grouped = out.data.reshape(2, 2, 2, 5, 5)
        np.testing.assert_allclose(
            grouped.mean(axis=(2, 3, 4)), np.zeros((2, 2)), atol=1e-4
        )
        np.testing.assert_allclose(
            grouped.std(axis=(2, 3, 4)), np.ones((2, 2)), atol=1e-3
        )

    def test_batch_independence(self, rng):
        # Unlike BN, each sample normalises independently: the output
        # for sample 0 must not change when sample 1 changes.
        gn = GroupNorm2d(2, 4)
        a = rng.normal(size=(2, 4, 3, 3)).astype(np.float32)
        b = a.copy()
        b[1] += 100.0
        out_a = gn(Tensor(a)).data[0]
        out_b = gn(Tensor(b)).data[0]
        np.testing.assert_allclose(out_a, out_b, atol=1e-5)

    def test_group_divisibility_checked(self):
        with pytest.raises(ValueError):
            GroupNorm2d(3, 4)

    def test_channel_mismatch_rejected(self, rng):
        gn = GroupNorm2d(2, 4)
        with pytest.raises(ValueError):
            gn(Tensor(rng.normal(size=(1, 6, 3, 3))))

    def test_numeric_gradient(self, rng):
        gn = GroupNorm2d(2, 4)
        x = Tensor(rng.normal(size=(1, 4, 3, 3)), requires_grad=True)
        (gn(x) ** 2).sum().backward()

        def f():
            return float((gn(Tensor(x.data)).data ** 2).sum())

        assert_grad_close(x.grad, numeric_gradient(x, f, eps=5e-3), rtol=5e-2)

    def test_affine_grads(self, rng):
        gn = GroupNorm2d(2, 4)
        x = Tensor(rng.normal(size=(2, 4, 3, 3)), requires_grad=True)
        gn(x).sum().backward()
        assert gn.weight.grad is not None
        np.testing.assert_allclose(gn.bias.grad, np.full(4, 2 * 9), rtol=1e-5)
