"""Tests for the analytic bounds (Eqs. 2-15) and the section 5.3 planner.

The paper's own numbers are the oracle here: with the measured
latencies (t_si=0.143, t_sd=0.013, t_ti=0.044, t_net=0.303) the bounds
must evaluate to traffic in [2.53, 21.2] Mbps, a 6.99 FPS throughput
ceiling, and MAX_UPDATES=8 from the planner.
"""

import pytest

from repro.analytic.bounds import (
    SystemParams,
    tc_bounds,
    throughput_lower_bound,
    throughput_upper_bound,
    total_time,
    traffic_lower_bound,
    traffic_upper_bound,
)
from repro.analytic.planner import choose_max_updates, paper_params


@pytest.fixture(scope="module")
def paper():
    return paper_params()  # defaults: partial, 80 Mbps, MAX_UPDATES=8


class TestPaperParams:
    def test_tnet_matches_section53(self, paper):
        assert paper.t_net == pytest.approx(0.303, abs=0.01)

    def test_snet_is_partial_roundtrip(self, paper):
        assert paper.s_net_bytes / 1_000_000 == pytest.approx(3.032, abs=2e-3)

    def test_latencies(self, paper):
        assert paper.t_si == pytest.approx(0.143)
        assert paper.t_sd == pytest.approx(0.013)
        assert paper.t_ti == pytest.approx(0.044)


class TestBoundsFormulae:
    def test_tc_bounds_ordering(self, paper):
        lo, hi = tc_bounds(paper)
        assert lo <= hi
        assert lo == pytest.approx(max(8 * 0.143, paper.t_net + 0.044))

    def test_total_time_formula(self, paper):
        t = total_time(paper, n=100, k=5, d=20, tc=1.0)
        expected = (100 - 5 * 8) * 0.143 + 20 * 0.013 + 5 * 1.0
        assert t == pytest.approx(expected)

    def test_total_time_rejects_impossible_k(self, paper):
        with pytest.raises(ValueError):
            total_time(paper, n=10, k=5, d=0, tc=1.0)

    def test_traffic_bounds_match_paper(self, paper):
        # Section 6.2: bounds are 2.53 and 21.2 Mbps.
        assert traffic_lower_bound(paper) == pytest.approx(2.53, abs=0.1)
        assert traffic_upper_bound(paper) == pytest.approx(21.2, abs=0.5)

    def test_throughput_upper_matches_paper(self, paper):
        # Section 5.3: maximum throughput 6.99 FPS.
        assert throughput_upper_bound(paper) == pytest.approx(6.99, abs=0.05)

    def test_throughput_lower_above_5fps(self, paper):
        # Section 5.3: MAX_UPDATES=8 keeps the lower bound above 5 FPS.
        assert throughput_lower_bound(paper) > 5.0

    def test_bounds_ordering(self, paper):
        assert traffic_lower_bound(paper) < traffic_upper_bound(paper)
        assert throughput_lower_bound(paper) < throughput_upper_bound(paper)

    def test_lower_bandwidth_lowers_throughput_lower_bound(self):
        from repro.network.model import NetworkModel

        fast = paper_params(network=NetworkModel(bandwidth_mbps=80))
        slow = paper_params(network=NetworkModel(bandwidth_mbps=8))
        assert throughput_lower_bound(slow) < throughput_lower_bound(fast)

    def test_more_updates_lower_throughput_floor(self):
        few = paper_params(max_updates=2)
        many = paper_params(max_updates=16)
        assert throughput_lower_bound(many) < throughput_lower_bound(few)

    def test_full_distillation_params(self):
        p = paper_params(partial=False)
        assert p.t_sd == pytest.approx(0.018)
        assert p.s_net_bytes / 1_000_000 == pytest.approx(4.483, abs=2e-3)


class TestSystemParamsValidation:
    def test_invalid_strides(self):
        with pytest.raises(ValueError):
            SystemParams(t_si=0.1, t_sd=0.01, t_ti=0.04, t_net=0.3,
                         s_net_bytes=1000, min_stride=10, max_stride=5,
                         max_updates=8)

    def test_negative_latency(self):
        with pytest.raises(ValueError):
            SystemParams(t_si=-0.1, t_sd=0.01, t_ti=0.04, t_net=0.3,
                         s_net_bytes=1000, min_stride=8, max_stride=64,
                         max_updates=8)


class TestPlanner:
    def test_paper_choice_is_eight(self):
        # Section 5.3: largest MAX_UPDATES with FPS gap <= 2 is 8.
        assert choose_max_updates(max_fps_gap=2.0) == 8

    def test_tighter_gap_fewer_updates(self):
        loose = choose_max_updates(max_fps_gap=2.0)
        tight = choose_max_updates(max_fps_gap=1.8)
        assert tight < loose

    def test_impossible_gap_raises(self):
        with pytest.raises(ValueError):
            choose_max_updates(max_fps_gap=1e-9)
