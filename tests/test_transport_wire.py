"""Property tests for the pickle-free wire format.

Round-trips every message kind across dtypes, shapes and degenerate
payloads, asserting byte-for-byte equality of decoded arrays, stable
encoded sizes, and that measured on-the-wire sizes reconcile against
the :class:`~repro.network.messages.MessageSizes` payload accounting.
"""

from collections import OrderedDict

import numpy as np
import pytest

from repro.models.student import StudentNet, partial_freeze
from repro.network.messages import MessageSizes
from repro.nn.serialize import (
    array_wire_nbytes,
    read_array,
    state_dict_bytes,
    state_dict_diff,
    write_array,
)
from repro.runtime.server import ServerReply
from repro.transport import wire

DTYPES = [np.float32, np.float64, np.uint8, np.int32, np.int64, np.bool_]
SHAPES = [(), (1,), (7,), (3, 5), (2, 3, 4), (1, 3, 8, 12), (0,), (3, 0, 2)]


def _array(dtype, shape, seed=0):
    rng = np.random.default_rng(seed)
    if np.dtype(dtype) == np.bool_:
        return rng.random(shape) > 0.5
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(0, 100, shape).astype(dtype)
    return rng.standard_normal(shape).astype(dtype)


class TestArrayFraming:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_roundtrip_bitwise(self, dtype, shape):
        arr = _array(dtype, shape)
        buf = memoryview(bytearray(array_wire_nbytes(arr)))
        end = write_array(buf, 0, arr)
        assert end == array_wire_nbytes(arr)
        out, offset = read_array(buf, 0)
        assert offset == end
        assert out.dtype == arr.dtype
        assert out.shape == arr.shape
        assert out.tobytes() == arr.tobytes()

    def test_non_contiguous_input(self):
        arr = np.arange(24, dtype=np.float32).reshape(4, 6).T
        buf = memoryview(bytearray(array_wire_nbytes(arr)))
        write_array(buf, 0, arr)
        out, _ = read_array(buf, 0)
        np.testing.assert_array_equal(out, arr)

    def test_nan_and_inf_survive(self):
        arr = np.array([np.nan, np.inf, -np.inf, 0.0], dtype=np.float32)
        buf = memoryview(bytearray(array_wire_nbytes(arr)))
        write_array(buf, 0, arr)
        out, _ = read_array(buf, 0)
        assert out.tobytes() == arr.tobytes()

    def test_object_dtype_rejected(self):
        arr = np.array([object()], dtype=object)
        with pytest.raises(ValueError):
            write_array(memoryview(bytearray(64)), 0, arr)

    def test_decoded_array_owns_memory(self):
        arr = np.ones(8, np.float32)
        backing = bytearray(array_wire_nbytes(arr))
        write_array(memoryview(backing), 0, arr)
        out, _ = read_array(memoryview(backing), 0)
        backing[:] = b"\xff" * len(backing)  # recycle the buffer
        np.testing.assert_array_equal(out, arr)


def _messages():
    frame = _array(np.float32, (3, 16, 24), seed=1)
    label = _array(np.int64, (16, 24), seed=2)
    state = OrderedDict(
        (f"m{i}.weight", _array(dt, (2, 3), seed=i))
        for i, dt in enumerate(DTYPES)
    )
    return [
        None,
        (frame, label),
        (frame, None),
        (frame.astype(np.uint8), label.astype(np.uint8)),
        state,
        OrderedDict(),                              # empty update
        OrderedDict(only=_array(np.float32, (0,))),  # degenerate payload
        ServerReply(update=state, metric=0.75, steps=8, initial_metric=0.5),
        ServerReply(update=OrderedDict(), metric=0.0, steps=0, initial_metric=0.0),
        label.astype(np.uint8),                     # teacher prediction
        _array(np.uint8, (0, 0)),                   # empty prediction
    ]


def _assert_equal(msg, out):
    if msg is None:
        assert out is None
    elif isinstance(msg, ServerReply):
        assert isinstance(out, ServerReply)
        assert out.metric == msg.metric
        assert out.initial_metric == msg.initial_metric
        assert out.steps == msg.steps
        _assert_equal(msg.update, out.update)
    elif isinstance(msg, dict):
        assert list(out) == list(msg)
        for key in msg:
            assert out[key].dtype == np.asarray(msg[key]).dtype
            assert out[key].tobytes() == np.asarray(msg[key]).tobytes()
    elif isinstance(msg, tuple):
        assert out[0].tobytes() == msg[0].tobytes()
        assert (out[1] is None) == (msg[1] is None)
        if msg[1] is not None:
            assert out[1].tobytes() == msg[1].tobytes()
    else:
        assert out.dtype == msg.dtype and out.tobytes() == msg.tobytes()


class TestMessageRoundTrip:
    @pytest.mark.parametrize("index", range(len(_messages())))
    def test_roundtrip_bitwise(self, index):
        msg = _messages()[index]
        encoded = wire.encode(msg)
        assert len(encoded) == wire.encoded_nbytes(msg)
        assert wire.peek_total(memoryview(encoded)) == len(encoded)
        _assert_equal(msg, wire.decode(encoded))

    @pytest.mark.parametrize("index", range(len(_messages())))
    def test_encoded_size_stable(self, index):
        """Two encodes of the same message are identical bytes."""
        msg = _messages()[index]
        assert wire.encode(msg) == wire.encode(msg)

    def test_encode_into_matches_encode(self):
        msg = _messages()[1]
        buf = bytearray(wire.encoded_nbytes(msg) + 64)  # oversized is fine
        written = wire.encode_into(msg, memoryview(buf))
        assert bytes(buf[:written]) == wire.encode(msg)

    def test_roundtrip_through_fragment_reassembly(self):
        """decode() accepts a message reassembled from arbitrary splits,
        as the shm ring produces."""
        msg = _messages()[4]
        encoded = wire.encode(msg)
        chunks = [encoded[i : i + 37] for i in range(0, len(encoded), 37)]
        _assert_equal(msg, wire.decode(b"".join(chunks)))


class TestWireErrors:
    def test_bad_magic(self):
        bad = bytearray(wire.encode(None))
        bad[0:2] = b"XX"
        with pytest.raises(wire.WireError):
            wire.decode(bad)

    def test_bad_version(self):
        bad = bytearray(wire.encode(None))
        bad[2] = 99
        with pytest.raises(wire.WireError):
            wire.decode(bad)

    def test_truncation(self):
        encoded = wire.encode(_messages()[1])
        with pytest.raises(wire.WireError):
            wire.decode(encoded[: len(encoded) // 2])

    def test_undersized_buffer(self):
        msg = _messages()[1]
        with pytest.raises(wire.WireError):
            wire.encode_into(msg, memoryview(bytearray(16)))

    def test_unencodable_object(self):
        with pytest.raises(wire.WireError):
            wire.encode("not a message")  # type: ignore[arg-type]


class TestSizeReconciliation:
    """Measured wire sizes must reconcile with MessageSizes' accounting."""

    def test_frame_overhead_is_exact_and_tiny(self):
        frame = _array(np.uint8, (3, 720, 1280))
        msg = (frame, None)
        sizes = MessageSizes.from_student(1, 1, frame_bytes=frame.nbytes)
        overhead = wire.encoded_nbytes(msg) - wire.payload_nbytes(msg)
        assert wire.payload_nbytes(msg) == sizes.frame_to_server
        # header + has_label byte + one array header
        assert overhead == wire.HEADER_NBYTES + 1 + (
            array_wire_nbytes(frame) - frame.nbytes
        )
        assert overhead / sizes.frame_to_server < 0.001

    def test_student_payloads_match_from_student(self):
        student = StudentNet(width=0.5, seed=0)
        partial_freeze(student)
        full = dict(student.state_dict())
        diff = state_dict_diff(student, trainable_only=True)
        sizes = MessageSizes.from_student(
            total_params=student.num_parameters(),
            trainable_params=student.num_parameters(trainable_only=True),
        )
        # Parameter payloads: the wire carries exactly the modelled
        # bytes (buffers ride along in the diff, as on the real system).
        assert wire.payload_nbytes(full) == state_dict_bytes(full)
        assert wire.payload_nbytes(dict(diff)) == state_dict_bytes(diff)
        param_only = sum(
            v.nbytes for k, v in diff.items() if k.endswith((".weight", ".bias"))
        )
        assert param_only == sizes.student_diff_partial
        # Framing overhead accounts exactly: header + count + per-entry
        # name framing + per-array typed header.  (Relative overhead is
        # ~1% on this reduced-width student and shrinks with scale.)
        for payload in (full, dict(diff)):
            expected = wire.HEADER_NBYTES + 4 + sum(
                2 + len(k.encode()) + (
                    array_wire_nbytes(np.asarray(v)) - np.asarray(v).nbytes
                )
                for k, v in payload.items()
            )
            overhead = wire.encoded_nbytes(payload) - wire.payload_nbytes(payload)
            assert overhead == expected
            assert overhead / wire.payload_nbytes(payload) < 0.02

    def test_reply_overhead_accounts_exactly(self):
        student = StudentNet(width=0.25, seed=0)
        partial_freeze(student)
        update = state_dict_diff(student, trainable_only=True)
        reply = ServerReply(update=update, metric=0.5, steps=3, initial_metric=0.1)
        per_array = sum(
            array_wire_nbytes(np.asarray(v)) - np.asarray(v).nbytes
            for v in update.values()
        )
        names = sum(2 + len(k.encode()) for k in update)
        expected = wire.HEADER_NBYTES + 20 + 4 + names + per_array
        assert wire.encoded_nbytes(reply) - wire.payload_nbytes(reply) == expected
