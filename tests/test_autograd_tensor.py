"""Unit tests for the core Tensor autograd engine."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.autograd.tensor import stack

from tests.helpers import assert_grad_close, numeric_gradient


class TestConstruction:
    def test_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float32

    def test_from_ndarray_casts_to_float32(self):
        t = Tensor(np.arange(4, dtype=np.float64))
        assert t.dtype == np.float32

    def test_from_tensor_shares_no_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor(a)
        assert not b.requires_grad

    def test_scalar_item(self):
        assert Tensor(3.5).item() == pytest.approx(3.5)

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert b._parents == ()

    def test_numpy_returns_underlying(self):
        a = Tensor([1.0, 2.0])
        assert a.numpy() is a.data


class TestArithmetic:
    def test_add_backward(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((3, 4)))
        np.testing.assert_allclose(b.grad, np.ones((3, 4)))

    def test_add_broadcast_backward(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full((4,), 3.0))

    def test_mul_backward(self, rng):
        a = Tensor(rng.normal(size=(5,)), requires_grad=True)
        b = Tensor(rng.normal(size=(5,)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data, rtol=1e-6)
        np.testing.assert_allclose(b.grad, a.data, rtol=1e-6)

    def test_div_backward(self, rng):
        a = Tensor(rng.uniform(1, 2, size=(4,)), requires_grad=True)
        b = Tensor(rng.uniform(1, 2, size=(4,)), requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1 / b.data, rtol=1e-5)
        np.testing.assert_allclose(b.grad, -a.data / b.data**2, rtol=1e-5)

    def test_pow_backward(self, rng):
        a = Tensor(rng.uniform(0.5, 2, size=(6,)), requires_grad=True)
        (a**3).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * a.data**2, rtol=1e-5)

    def test_neg_and_sub(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (a - b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, -np.ones(3))

    def test_rsub_rdiv_radd_rmul(self):
        a = Tensor([2.0], requires_grad=True)
        assert (3.0 - a).item() == pytest.approx(1.0)
        assert (4.0 / a).item() == pytest.approx(2.0)
        assert (3.0 + a).item() == pytest.approx(5.0)
        assert (3.0 * a).item() == pytest.approx(6.0)

    def test_gradient_accumulates_on_reuse(self):
        a = Tensor([1.0], requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [2.0])

    def test_diamond_graph(self):
        # a -> b, c -> d: gradient flows through both paths once each.
        a = Tensor([3.0], requires_grad=True)
        b = a * 2
        c = a * 5
        (b + c).backward()
        np.testing.assert_allclose(a.grad, [7.0])


class TestMatmulShapes:
    def test_matmul_grad_matches_numeric(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        ((a @ b) ** 2).sum().backward()

        def f():
            return float(((a.data @ b.data) ** 2).sum())

        assert_grad_close(a.grad, numeric_gradient(a, f))
        assert_grad_close(b.grad, numeric_gradient(b, f))

    def test_reshape_roundtrip_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        a.reshape(3, 4).sum().backward()
        assert a.grad.shape == (2, 6)
        np.testing.assert_allclose(a.grad, np.ones((2, 6)))

    def test_reshape_accepts_tuple(self, rng):
        a = Tensor(rng.normal(size=(4,)))
        assert a.reshape((2, 2)).shape == (2, 2)

    def test_transpose_grad(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        (a.transpose(2, 0, 1) * 2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3, 4), 2.0))

    def test_transpose_default_reverses(self, rng):
        a = Tensor(rng.normal(size=(2, 3)))
        assert a.transpose().shape == (3, 2)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 5)))

    def test_sum_axis_no_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 5)), requires_grad=True)
        out = a.sum(axis=0)
        assert out.shape == (5,)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 5)))

    def test_mean_grad(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        a.mean().backward()
        np.testing.assert_allclose(a.grad, np.full((4, 5), 1 / 20), rtol=1e-6)

    def test_mean_axis(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        a.mean(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((4, 5), 1 / 5), rtol=1e-6)


class TestNonlinearities:
    @pytest.mark.parametrize("op,deriv", [
        ("relu", lambda x: (x > 0).astype(np.float32)),
        ("exp", lambda x: np.exp(x)),
        ("sigmoid", lambda x: 1 / (1 + np.exp(-x)) * (1 - 1 / (1 + np.exp(-x)))),
        ("tanh", lambda x: 1 - np.tanh(x) ** 2),
    ])
    def test_elementwise_derivatives(self, rng, op, deriv):
        a = Tensor(rng.normal(size=(10,)), requires_grad=True)
        getattr(a, op)().sum().backward()
        np.testing.assert_allclose(a.grad, deriv(a.data), rtol=1e-4, atol=1e-6)

    def test_log_grad(self, rng):
        a = Tensor(rng.uniform(0.5, 3, size=(8,)), requires_grad=True)
        a.log().sum().backward()
        np.testing.assert_allclose(a.grad, 1 / a.data, rtol=1e-5)

    def test_relu_zeroes_negatives(self):
        a = Tensor([-1.0, 0.0, 2.0])
        np.testing.assert_allclose(a.relu().data, [0.0, 0.0, 2.0])


class TestStructuralOps:
    def test_concat_forward_backward(self, rng):
        a = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4, 3, 3)), requires_grad=True)
        out = Tensor.concat([a, b], axis=1)
        assert out.shape == (1, 6, 3, 3)
        (out * 3).sum().backward()
        np.testing.assert_allclose(a.grad, np.full(a.shape, 3.0))
        np.testing.assert_allclose(b.grad, np.full(b.shape, 3.0))

    def test_pad2d_shape_and_grad(self, rng):
        a = Tensor(rng.normal(size=(1, 2, 4, 5)), requires_grad=True)
        out = a.pad2d(1, 2)
        assert out.shape == (1, 2, 6, 9)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(a.shape))

    def test_pad2d_zero_is_identity(self, rng):
        a = Tensor(rng.normal(size=(1, 1, 2, 2)))
        assert a.pad2d(0, 0) is a

    def test_upsample2x_forward(self):
        a = Tensor(np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2))
        out = a.upsample2x()
        assert out.shape == (1, 1, 4, 4)
        np.testing.assert_allclose(
            out.data[0, 0],
            [[0, 0, 1, 1], [0, 0, 1, 1], [2, 2, 3, 3], [2, 2, 3, 3]],
        )

    def test_upsample2x_backward_sums(self, rng):
        a = Tensor(rng.normal(size=(1, 1, 2, 2)), requires_grad=True)
        a.upsample2x().sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 1, 2, 2), 4.0))

    def test_avg_pool2d_forward(self):
        a = Tensor(np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4))
        out = a.avg_pool2d(2)
        np.testing.assert_allclose(out.data[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool2d_backward(self, rng):
        a = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        a.avg_pool2d(2).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((1, 2, 4, 4), 0.25))

    def test_avg_pool_rejects_indivisible(self, rng):
        a = Tensor(rng.normal(size=(1, 1, 5, 4)))
        with pytest.raises(ValueError):
            a.avg_pool2d(2)

    def test_stack(self, rng):
        parts = [Tensor(rng.normal(size=(2,)), requires_grad=True) for _ in range(3)]
        out = stack(parts, axis=0)
        assert out.shape == (3, 2)
        out.sum().backward()
        for p in parts:
            np.testing.assert_allclose(p.grad, np.ones(2))


class TestGradControl:
    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            b = a * 2
        assert not b.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_backward_requires_grad(self):
        a = Tensor([1.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_backward_nonscalar_needs_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_with_explicit_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        (a * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(a.grad, [3.0, 30.0])

    def test_zero_grad(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None

    def test_frozen_parent_skipped(self):
        a = Tensor([1.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=False)
        (a * b).backward()
        assert b.grad is None
        np.testing.assert_allclose(a.grad, [2.0])

    def test_deep_chain_backward(self):
        # Deep graphs must not hit recursion limits (iterative toposort).
        a = Tensor([1.0], requires_grad=True)
        x = a
        for _ in range(2000):
            x = x + 1.0
        x.backward()
        np.testing.assert_allclose(a.grad, [1.0])
