"""Tests for the Module/Parameter system and freezing semantics."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Conv2d, BatchNorm2d, Sequential, ReLU
from repro.nn.module import Module, Parameter


class Leaf(Module):
    def __init__(self):
        super().__init__()
        self.w = Parameter(np.ones((2, 2), dtype=np.float32))
        self.register_buffer("stat", np.zeros(2, dtype=np.float32))

    def forward(self, x):
        return x @ self.w


class Tree(Module):
    def __init__(self):
        super().__init__()
        self.left = Leaf()
        self.right = Leaf()
        self.bias = Parameter(np.zeros(2, dtype=np.float32))

    def forward(self, x):
        return self.left(x) + self.right(x) + self.bias


class TestRegistration:
    def test_parameters_discovered(self):
        tree = Tree()
        names = [n for n, _ in tree.named_parameters()]
        assert set(names) == {"left.w", "right.w", "bias"}

    def test_buffers_discovered(self):
        tree = Tree()
        names = [n for n, _ in tree.named_buffers()]
        assert set(names) == {"left.stat", "right.stat"}

    def test_named_modules_includes_root(self):
        tree = Tree()
        names = [n for n, _ in tree.named_modules()]
        assert "" in names and "left" in names and "right" in names

    def test_num_parameters(self):
        tree = Tree()
        assert tree.num_parameters() == 4 + 4 + 2

    def test_set_buffer_updates_attribute(self):
        leaf = Leaf()
        leaf.set_buffer("stat", np.array([1.0, 2.0]))
        np.testing.assert_allclose(leaf.stat, [1.0, 2.0])
        np.testing.assert_allclose(dict(leaf.named_buffers())["stat"], [1.0, 2.0])

    def test_set_unknown_buffer_raises(self):
        leaf = Leaf()
        with pytest.raises(KeyError):
            leaf.set_buffer("nope", np.zeros(1))


class TestFreezing:
    def test_freeze_unfreeze_roundtrip(self):
        tree = Tree()
        tree.freeze()
        assert all(p.frozen for p in tree.parameters())
        tree.unfreeze()
        assert not any(p.frozen for p in tree.parameters())

    def test_freeze_where_by_prefix(self):
        tree = Tree()
        frozen = tree.freeze_where(lambda n: n.startswith("left"))
        assert frozen == ["left.w"]
        assert tree.left.w.frozen and not tree.right.w.frozen

    def test_trainable_fraction(self):
        tree = Tree()
        tree.freeze_where(lambda n: n == "left.w")
        assert tree.trainable_fraction() == pytest.approx(6 / 10)

    def test_frozen_param_excluded_from_trainable(self):
        tree = Tree()
        tree.left.w.freeze()
        assert tree.left.w not in tree.trainable_parameters()

    def test_freeze_clears_grad(self):
        leaf = Leaf()
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        leaf(x).sum().backward()
        assert leaf.w.grad is not None
        leaf.w.freeze()
        assert leaf.w.grad is None

    def test_frozen_gets_no_new_grads(self):
        leaf = Leaf()
        leaf.w.freeze()
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        out = leaf(x)
        # Output requires no grad at all: the whole graph is frozen.
        assert not out.requires_grad


class TestTrainEval:
    def test_mode_propagates(self):
        net = Sequential(Conv2d(2, 2, 3), BatchNorm2d(2), ReLU())
        net.eval()
        assert not net.training
        assert not net[1].training
        net.train()
        assert net[1].training

    def test_zero_grad_clears_all(self):
        tree = Tree()
        x = Tensor(np.ones((1, 2), dtype=np.float32))
        tree(x).sum().backward()
        tree.zero_grad()
        assert all(p.grad is None for p in tree.parameters())


class TestStateDict:
    def test_roundtrip(self):
        a, b = Tree(), Tree()
        for p in a.parameters():
            p.data += 1.0
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_allclose(pa.data, pb.data)

    def test_state_dict_contains_buffers(self):
        tree = Tree()
        assert "left.stat" in tree.state_dict()

    def test_loaded_arrays_are_copies(self):
        a, b = Tree(), Tree()
        state = a.state_dict()
        b.load_state_dict(state)
        b.bias.data += 5.0
        np.testing.assert_allclose(a.bias.data, np.zeros(2))

    def test_strict_missing_raises(self):
        tree = Tree()
        state = tree.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_strict_unexpected_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["ghost"] = np.zeros(1)
        with pytest.raises(KeyError):
            tree.load_state_dict(state)

    def test_non_strict_ignores_mismatch(self):
        tree = Tree()
        state = tree.state_dict()
        del state["bias"]
        state["ghost"] = np.zeros(1)
        tree.load_state_dict(state, strict=False)

    def test_shape_mismatch_raises(self):
        tree = Tree()
        state = tree.state_dict()
        state["bias"] = np.zeros(5)
        with pytest.raises(ValueError):
            tree.load_state_dict(state)

    def test_buffer_loading(self):
        a, b = Tree(), Tree()
        a.left.set_buffer("stat", np.array([9.0, 9.0]))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(b.left.stat, [9.0, 9.0])
