"""Telemetry + runtime-report integration tests (ISSUE 8).

Covers the report's abnormal exit paths (typed ``exit_reason`` on
crash, idle timeout, and a killed server surfacing the ``report-lost``
marker instead of ``None``), the armed bit-identity invariant over a
real multi-process deployment, and the metrics snapshot riding the
report pipe over the socket transport.
"""

import pytest

from repro import obs
from repro.distill.config import DistillConfig
from repro.runtime.session import SessionConfig, run_shadowtutor
from repro.serving.runtime import (
    REPORT_LOST,
    SessionBlueprint,
    run_client_processes,
    start_server,
)
from repro.video.dataset import CATEGORY_BY_KEY, make_category_video

_HW = (32, 48)


def _config():
    return SessionConfig(
        distill=DistillConfig(max_updates=4, threshold=0.7,
                              min_stride=4, max_stride=16),
        student_width=0.25,
        pretrain_steps=10,
    )


def _video():
    return make_category_video(
        CATEGORY_BY_KEY["fixed-people"], height=_HW[0], width=_HW[1]
    )


@pytest.fixture(autouse=True)
def _disarmed():
    """Arming is process-global; never leak it across tests."""
    obs.disarm()
    yield
    obs.disarm()


class TestArmedServing:
    """Armed telemetry must observe the deployment, never perturb it."""

    N = 2
    FRAMES = 8

    def _serve(self, transport, obs_config):
        blueprints = [SessionBlueprint(_config(), _HW) for _ in range(self.N)]
        handle = start_server(
            blueprints, transport=transport, n_clients=self.N,
            idle_timeout_s=60, obs_config=obs_config,
        )
        try:
            jobs = [
                (_config(), _HW, "fixed-people", self.FRAMES, f"s{i}")
                for i in range(self.N)
            ]
            stats = run_client_processes(handle, jobs, timeout_s=180)
        finally:
            handle.close()
        assert handle.process.exitcode == 0
        return stats, handle.runtime_report

    @pytest.mark.parametrize("transport", ["shm", "socket"])
    def test_report_metrics_populated_over_both_transports(self, transport):
        _, report = self._serve(
            transport, obs.ObsConfig(metrics=True, trace=True)
        )
        assert report is not None
        assert report["exit_reason"] == "quiesced"
        snapshot = report["metrics"]
        assert snapshot["source"] == "server"
        assert snapshot["counters"]["serve.cohorts"] >= 1
        assert snapshot["counters"]["admission.accepted"] == self.N
        assert snapshot["histograms"]["sweep.duration_s"]["count"] >= 1
        assert snapshot["histograms"]["serve.serve_s"]["count"] >= 1
        assert snapshot["histograms"]["serve.cohort_size"]["count"] >= 1
        # Flush reasons partition the cohort count.
        flushes = sum(
            v for k, v in snapshot["counters"].items()
            if k.startswith("serve.flush.")
        )
        assert flushes == snapshot["counters"]["serve.cohorts"]
        # Per-session serve timeline rode the report too.
        assert snapshot["series"]["session.serve"]
        # Tracing was armed: the report carries server spans.
        assert any(e["name"] == "serve" for e in report["trace"])

    def test_armed_run_bit_identical_to_disarmed(self):
        reference = run_shadowtutor(
            _video(), self.FRAMES, _config(), label="ref"
        )
        armed_stats, report = self._serve(
            "shm", obs.ObsConfig(metrics=True, trace=True, engine=True)
        )
        assert report["exit_reason"] == "quiesced"
        # The invariant: telemetry records wall-clock but never feeds
        # computation, so fully-armed sessions replay bit for bit.
        for got in armed_stats:
            assert got.signature(include_label=False) == reference.signature(
                include_label=False
            )

    def test_disarmed_report_still_carries_serve_accounting(self):
        _, report = self._serve("shm", None)
        # Disarmed, the runtime's local always-on registry still counts
        # cohorts — the report shape is arming-independent.
        snapshot = report["metrics"]
        assert snapshot["counters"]["serve.cohorts"] >= 1
        assert "trace" not in report


class TestAbnormalExitReports:
    def test_idle_timeout_reaches_report(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=0.3,
        )
        handle.process.join(timeout=30)
        handle.close()
        assert handle.process.exitcode != 0
        report = handle.runtime_report
        assert report["exit_reason"] == "idle-timeout"
        # The runtime existed: its accounting flushed despite the crash.
        assert report["metrics"]["source"] == "server"

    def test_construction_error_reaches_report_typed(self):
        # max_sessions=0 is rejected inside the server process, before
        # a runtime exists; the report must still arrive, typed.
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60, max_sessions=0,
        )
        handle.process.join(timeout=30)
        handle.close()
        assert handle.process.exitcode != 0
        report = handle.runtime_report
        assert report["exit_reason"] == "error:ValueError"
        assert report["frames_served"] == {}

    def test_killed_server_surfaces_report_lost_marker(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60,
        )
        # SIGKILL: no finally runs in the child, so no report can ever
        # arrive — close() must synthesise the typed marker, fast.
        handle.process.kill()
        handle.process.join(timeout=30)
        handle.close(report_timeout_s=0.2)
        report = handle.runtime_report
        assert report is not None, "close() left runtime_report = None"
        assert report["exit_reason"] == REPORT_LOST
        assert report["report_lost"] is True

    def test_report_timeout_default_is_configurable(self):
        handle = start_server(
            [SessionBlueprint(_config(), _HW)], transport="shm",
            n_clients=1, idle_timeout_s=60, report_timeout_s=0.4,
        )
        assert handle.report_timeout_s == 0.4
        handle.process.kill()
        handle.process.join(timeout=30)
        handle.close()  # uses the handle default, no per-call override
        assert handle.runtime_report["exit_reason"] == REPORT_LOST
