"""Integration tests: full system runs reproducing the paper's headline
claims at reduced scale."""

import numpy as np
import pytest

from repro import (
    DistillConfig,
    DistillMode,
    LVS_CATEGORIES,
    SessionConfig,
    make_category_video,
    run_naive,
    run_shadowtutor,
    run_wild,
)
from repro.runtime.session import pretrained_student

FRAMES = 150
CFG = SessionConfig(student_width=0.35, pretrain_steps=40)


@pytest.fixture(scope="module")
def easy_video():
    return make_category_video(LVS_CATEGORIES[1], height=48, width=64)


@pytest.fixture(scope="module")
def shadow_stats(easy_video):
    return run_shadowtutor(easy_video, FRAMES, CFG)


@pytest.fixture(scope="module")
def naive_stats(easy_video):
    return run_naive(easy_video, FRAMES, CFG)


class TestHeadlineClaims:
    def test_throughput_improvement_over_3x(self, shadow_stats, naive_stats):
        # Abstract: "throughput of the system is improved by over three times".
        assert shadow_stats.throughput_fps > 3 * naive_stats.throughput_fps

    def test_network_transfer_reduced_over_90pct(self, shadow_stats, naive_stats):
        # Abstract: "network data transfer is reduced by 95% on average".
        assert shadow_stats.total_bytes < 0.1 * naive_stats.total_bytes

    def test_key_frames_sparse(self, shadow_stats):
        assert shadow_stats.key_frame_ratio < 0.2

    def test_accuracy_far_above_wild(self, easy_video, shadow_stats):
        wild = run_wild(easy_video, FRAMES, CFG)
        assert shadow_stats.mean_miou > wild.mean_miou + 0.2

    def test_naive_accuracy_perfect(self, naive_stats):
        # Accuracy is measured against the teacher, so naive scores 1.0.
        assert naive_stats.mean_miou == pytest.approx(1.0)

    def test_traffic_within_analytic_bounds(self, shadow_stats):
        from repro.analytic.bounds import traffic_lower_bound, traffic_upper_bound
        from repro.analytic.planner import paper_params

        p = paper_params()
        assert (
            traffic_lower_bound(p) * 0.9
            <= shadow_stats.network_traffic_mbps
            <= traffic_upper_bound(p) * 1.1
        )

    def test_throughput_within_analytic_bounds(self, shadow_stats):
        from repro.analytic.bounds import (
            throughput_lower_bound,
            throughput_upper_bound,
        )
        from repro.analytic.planner import paper_params

        p = paper_params()
        assert (
            throughput_lower_bound(p) * 0.95
            <= shadow_stats.throughput_fps
            <= throughput_upper_bound(p) * 1.05
        )


class TestDeterminism:
    def test_same_config_same_results(self, easy_video):
        a = run_shadowtutor(easy_video, 60, CFG)
        b = run_shadowtutor(easy_video, 60, CFG)
        assert a.total_time_s == b.total_time_s
        assert [k.index for k in a.key_frames] == [k.index for k in b.key_frames]
        assert a.mean_miou == pytest.approx(b.mean_miou)


class TestPretrainedStudentCache:
    def test_cache_returns_equal_weights(self):
        a = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        b = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_cache_instances_independent(self):
        a = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        b = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        a.out3.weight.data += 1.0
        assert not np.allclose(a.out3.weight.data, b.out3.weight.data)

    def test_loaded_students_never_alias_the_cache(self):
        """Pooled-serving regression: a session mutating its student *in
        place* (weights or batch-norm running stats) must leave the
        shared checkpoint — and every concurrently loaded session —
        untouched.  Buffers used to be loaded as no-copy views."""
        from repro.runtime.session import _PRETRAINED_CACHE

        key_args = dict(width=0.35, steps=5, frame_hw=(48, 64))
        mutated = pretrained_student(**key_args)
        cache_entry = _PRETRAINED_CACHE[(0.35, 0, 5, (48, 64))]
        snapshot = {k: v.copy() for k, v in cache_entry.items()}

        # In-place mutation of every kind of loaded state.
        for _, param in mutated.named_parameters():
            param.data[...] = 123.0
        for _, buf in mutated.named_buffers():
            buf[...] = 456.0

        for name, value in cache_entry.items():
            np.testing.assert_array_equal(
                value, snapshot[name],
                err_msg=f"cache entry {name} was corrupted by a session",
            )
        fresh = pretrained_student(**key_args)
        for name, value in fresh.state_dict().items():
            np.testing.assert_array_equal(value, snapshot[name], err_msg=name)

    def test_sibling_sessions_share_no_arrays(self):
        """Two sessions loaded from one checkpoint share zero storage."""
        a = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        b = pretrained_student(width=0.35, steps=5, frame_hw=(48, 64))
        a_arrays = {name: arr for name, arr in a.state_dict().items()}
        for name, arr in b.state_dict().items():
            assert not np.shares_memory(arr, a_arrays[name]), name


class TestModesCompared:
    def test_partial_no_worse_traffic_than_full(self, easy_video):
        partial = run_shadowtutor(
            easy_video, 100,
            SessionConfig(distill=DistillConfig(mode=DistillMode.PARTIAL),
                          student_width=0.35, pretrain_steps=40),
        )
        full = run_shadowtutor(
            easy_video, 100,
            SessionConfig(distill=DistillConfig(mode=DistillMode.FULL),
                          student_width=0.35, pretrain_steps=40),
        )
        per_kf_partial = partial.total_bytes / partial.num_key_frames
        per_kf_full = full.total_bytes / full.num_key_frames
        assert per_kf_partial < per_kf_full

    def test_forced_delay_degrades_gracefully(self, easy_video):
        p1 = run_shadowtutor(
            easy_video, 100,
            SessionConfig(student_width=0.35, pretrain_steps=40,
                          forced_delay_frames=1),
        )
        p8 = run_shadowtutor(
            easy_video, 100,
            SessionConfig(student_width=0.35, pretrain_steps=40,
                          forced_delay_frames=8),
        )
        # Stale weights may hurt, but only mildly (temporal coherence).
        assert p8.mean_miou > p1.mean_miou - 0.15
