"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.category == "fixed-people"
        assert args.frames == 300

    def test_run_rejects_unknown_category(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--category", "nope"])

    def test_sweep_bandwidth_list(self):
        args = build_parser().parse_args(
            ["sweep", "--bandwidths", "8", "80"]
        )
        assert args.bandwidths == [8.0, 80.0]

    def test_table_requires_name(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table"])

    def test_table_name_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "--name", "table99"])


class TestCommands:
    def test_plan_prints_bounds(self, capsys):
        rc = main(["plan"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "traffic bounds" in out
        assert "MAX_UPDATES : 8" in out

    def test_plan_custom_bandwidth(self, capsys):
        rc = main(["plan", "--bandwidth", "8"])
        assert rc == 0
        assert "8.0 Mbps" in capsys.readouterr().out

    def test_run_small(self, capsys):
        rc = main([
            "run", "--frames", "30", "--width", "0.25", "--pretrain", "5",
            "--no-baselines",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput" in out
        assert "mIoU" in out

    def test_run_with_baselines(self, capsys):
        rc = main([
            "run", "--frames", "25", "--width", "0.25", "--pretrain", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup over naive" in out

    def test_table4(self, capsys):
        rc = main(["table", "--name", "table4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "to_server_mb" in out

    def test_sweep_small(self, capsys):
        rc = main([
            "sweep", "--video", "softball", "--bandwidths", "8", "80",
            "--frames", "25", "--width", "0.25", "--pretrain", "5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "throughput (FPS) vs bandwidth" in out
