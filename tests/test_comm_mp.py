"""Tests for the real multiprocessing transport and a live server loop."""

import numpy as np
import pytest

from repro.comm.mp import PipeTransport, run_in_subprocess, spawn_pipe_pair


class TestPipeTransport:
    def test_roundtrip_in_process(self):
        a, b = spawn_pipe_pair()
        a.send({"x": np.arange(3)}, nbytes=24)
        msg = b.recv()
        np.testing.assert_array_equal(msg["x"], np.arange(3))
        a.close(), b.close()

    def test_isend_completes_immediately(self):
        a, b = spawn_pipe_pair()
        req = a.isend("data", nbytes=4)
        assert req.test()
        assert b.recv() == "data"
        a.close(), b.close()

    def test_irecv_polls(self):
        a, b = spawn_pipe_pair()
        req = b.irecv()
        assert not req.test()
        a.send("late", nbytes=4)
        assert req.wait() == "late"
        a.close(), b.close()

    def test_irecv_payload_after_completion(self):
        a, b = spawn_pipe_pair()
        a.send(42, nbytes=4)
        req = b.irecv()
        req.wait()
        assert req.payload() == 42
        a.close(), b.close()


def _echo_server(endpoint):
    """Child process: echoes messages until None arrives."""
    while True:
        msg = endpoint.recv()
        if msg is None:
            break
        endpoint.send(("echo", msg), nbytes=64)


class TestSubprocess:
    def test_echo_across_process_boundary(self):
        endpoint, proc = run_in_subprocess(_echo_server)
        try:
            endpoint.send({"frame": 7}, nbytes=64)
            reply = endpoint.recv()
            assert reply == ("echo", {"frame": 7})
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=10)
            assert proc.exitcode == 0

    def test_numpy_payloads_cross_processes(self):
        endpoint, proc = run_in_subprocess(_echo_server)
        try:
            arr = np.arange(12, dtype=np.float32).reshape(3, 4)
            endpoint.send(arr, nbytes=arr.nbytes)
            _, echoed = endpoint.recv()
            np.testing.assert_array_equal(echoed, arr)
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=10)
