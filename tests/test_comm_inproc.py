"""Tests for the simulated in-process transport."""

import pytest

from repro.comm.inproc import SimulatedChannel
from repro.network.model import NetworkModel
from repro.runtime.clock import SimClock


@pytest.fixture
def channel():
    clock = SimClock()
    net = NetworkModel(bandwidth_mbps=80.0, base_latency_s=0.0)
    return SimulatedChannel(clock, net)


class TestBlockingOps:
    def test_send_recv_roundtrip(self, channel):
        channel.client.send({"hello": 1}, nbytes=10**6)
        msg = channel.server.recv()
        assert msg == {"hello": 1}

    def test_recv_advances_clock_to_delivery(self, channel):
        channel.client.send("x", nbytes=10**6)  # 0.1 s at 80 Mbps
        channel.server.recv()
        assert channel.clock.now == pytest.approx(0.1)

    def test_fifo_ordering(self, channel):
        channel.client.send("first", nbytes=100)
        channel.client.send("second", nbytes=100)
        assert channel.server.recv() == "first"
        assert channel.server.recv() == "second"

    def test_recv_without_send_raises(self, channel):
        with pytest.raises(RuntimeError):
            channel.server.recv()

    def test_link_serialises_transfers(self, channel):
        # Two back-to-back sends share the uplink: the second is delayed.
        channel.client.send("a", nbytes=10**6)
        channel.client.send("b", nbytes=10**6)
        channel.server.recv()
        assert channel.clock.now == pytest.approx(0.1)
        channel.server.recv()
        assert channel.clock.now == pytest.approx(0.2)

    def test_directions_independent(self, channel):
        channel.client.send("up", nbytes=10**6)
        channel.server.send("down", nbytes=10**6)
        assert channel.server.recv() == "up"
        assert channel.client.recv() == "down"


class TestNonBlockingOps:
    def test_isend_returns_completed_request_after_wait(self, channel):
        req = channel.client.isend("payload", nbytes=10**6)
        assert req.wait() == "payload"
        assert channel.clock.now >= 0.1

    def test_irecv_test_false_until_delivery(self, channel):
        req = channel.server.irecv()
        channel.client.isend("data", nbytes=10**6)
        assert not req.test()  # clock has not advanced yet
        channel.clock.advance(0.05)
        assert not req.test()
        channel.clock.advance(0.06)
        assert req.test()
        assert req.payload() == "data"

    def test_irecv_wait_advances_clock(self, channel):
        channel.client.isend("data", nbytes=10**6)
        req = channel.server.irecv()
        assert req.wait() == "data"
        assert channel.clock.now == pytest.approx(0.1)

    def test_irecv_before_send_resolves_lazily(self, channel):
        req = channel.server.irecv()
        assert not req.test()
        channel.client.isend("late", nbytes=100)
        assert req.wait() == "late"

    def test_irecv_wait_without_send_raises(self, channel):
        req = channel.server.irecv()
        with pytest.raises(RuntimeError):
            req.wait()


class TestAccounting:
    def test_transfers_recorded(self, channel):
        channel.client.send("a", nbytes=1000)
        channel.server.send("b", nbytes=500)
        assert channel.accountant.total_bytes == 1500
        up, down = channel.accountant.bytes_by_direction()
        assert up == 1000 and down == 500
