"""Tests for the simulated clock and the component latency model."""

import pytest

from repro.runtime.clock import LatencyModel, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == pytest.approx(2.0)

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(3.0)
        assert clock.now == 3.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(10.0)
        clock.advance_to(3.0)
        assert clock.now == 10.0


class TestLatencyModel:
    def test_paper_defaults(self):
        lat = LatencyModel()
        assert lat.t_si == pytest.approx(0.143)
        assert lat.t_sd_partial == pytest.approx(0.013)
        assert lat.t_sd_full == pytest.approx(0.018)
        assert lat.t_ti == pytest.approx(0.044)

    def test_t_sd_selector(self):
        lat = LatencyModel()
        assert lat.t_sd(True) == lat.t_sd_partial
        assert lat.t_sd(False) == lat.t_sd_full

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(t_si=-0.1)
