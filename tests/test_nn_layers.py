"""Tests for Conv2d, BatchNorm2d and container layers."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Identity,
    ReLU,
    Sequential,
    Upsample2x,
)

from tests.helpers import assert_grad_close, numeric_gradient


class TestConv2dLayer:
    def test_same_padding_preserves_size(self, rng):
        layer = Conv2d(3, 5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 3, 8, 8))))
        assert out.shape == (1, 5, 8, 8)

    def test_asymmetric_kernels(self, rng):
        for k in [(3, 1), (1, 3)]:
            layer = Conv2d(2, 2, k, rng=rng)
            out = layer(Tensor(rng.normal(size=(1, 2, 6, 6))))
            assert out.shape == (1, 2, 6, 6)

    def test_stride_halves_resolution(self, rng):
        layer = Conv2d(2, 4, 3, stride=2, rng=rng)
        out = layer(Tensor(rng.normal(size=(1, 2, 8, 8))))
        assert out.shape == (1, 4, 4, 4)

    def test_no_bias_option(self, rng):
        layer = Conv2d(2, 2, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(layer.parameters()) == 1

    def test_weight_init_scale(self, rng):
        # He init std = sqrt(2 / fan_in); check within loose bounds.
        layer = Conv2d(16, 64, 3, rng=rng)
        std = layer.weight.data.std()
        expected = np.sqrt(2.0 / (16 * 9))
        assert 0.7 * expected < std < 1.3 * expected


class TestBatchNorm:
    def test_train_normalises_batch(self, rng):
        bn = BatchNorm2d(4)
        x = Tensor(rng.normal(2.0, 3.0, size=(8, 4, 5, 5)))
        out = bn(x)
        mean = out.data.mean(axis=(0, 2, 3))
        std = out.data.std(axis=(0, 2, 3))
        np.testing.assert_allclose(mean, np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(std, np.ones(4), atol=1e-3)

    def test_running_stats_update(self, rng):
        bn = BatchNorm2d(2, momentum=0.5)
        x = Tensor(np.full((2, 2, 3, 3), 4.0, dtype=np.float32))
        bn(x)
        np.testing.assert_allclose(bn.running_mean, [2.0, 2.0])

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.set_buffer("running_mean", np.array([1.0, 1.0]))
        bn.set_buffer("running_var", np.array([4.0, 4.0]))
        bn.eval()
        x = Tensor(np.full((1, 2, 2, 2), 3.0, dtype=np.float32))
        out = bn(x)
        np.testing.assert_allclose(out.data, (3.0 - 1.0) / 2.0, rtol=1e-4)

    def test_eval_does_not_update_running_stats(self, rng):
        bn = BatchNorm2d(2)
        bn.eval()
        before = bn.running_mean.copy()
        bn(Tensor(rng.normal(size=(1, 2, 3, 3))))
        np.testing.assert_allclose(bn.running_mean, before)

    def test_channel_mismatch_raises(self, rng):
        bn = BatchNorm2d(3)
        with pytest.raises(ValueError):
            bn(Tensor(rng.normal(size=(1, 2, 3, 3))))

    def test_train_backward_matches_numeric(self, rng):
        bn = BatchNorm2d(2)
        x = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)
        (bn(x) ** 2).sum().backward()

        def f():
            bn2 = BatchNorm2d(2)
            bn2.weight.data = bn.weight.data
            bn2.bias.data = bn.bias.data
            return float((bn2(Tensor(x.data)).data ** 2).sum())

        assert_grad_close(x.grad, numeric_gradient(x, f, eps=5e-3), rtol=5e-2)

    def test_affine_params_get_grads(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        bn(x).sum().backward()
        assert bn.weight.grad is not None
        assert bn.bias.grad is not None
        # d(sum)/d(bias) = number of pixels per channel
        np.testing.assert_allclose(bn.bias.grad, np.full(3, 2 * 16), rtol=1e-5)

    def test_frozen_bn_still_backprops_to_input(self, rng):
        bn = BatchNorm2d(2)
        bn.freeze()
        x = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        bn(x).sum().backward()
        assert x.grad is not None
        assert bn.weight.grad is None


class TestContainers:
    def test_sequential_order(self, rng):
        net = Sequential(Conv2d(2, 3, 3, rng=rng), ReLU(), Conv2d(3, 1, 1, rng=rng))
        out = net(Tensor(rng.normal(size=(1, 2, 4, 4))))
        assert out.shape == (1, 1, 4, 4)

    def test_sequential_len_getitem(self, rng):
        net = Sequential(ReLU(), Identity())
        assert len(net) == 2
        assert isinstance(net[0], ReLU)

    def test_sequential_registers_children(self, rng):
        net = Sequential(Conv2d(1, 1, 1, rng=rng), Conv2d(1, 1, 1, rng=rng))
        assert len(net.parameters()) == 4  # two weights + two biases

    def test_identity_passthrough(self, rng):
        x = Tensor(rng.normal(size=(3,)))
        assert Identity()(x) is x

    def test_avg_pool_module(self, rng):
        out = AvgPool2d(2)(Tensor(rng.normal(size=(1, 2, 4, 4))))
        assert out.shape == (1, 2, 2, 2)

    def test_upsample_module(self, rng):
        out = Upsample2x()(Tensor(rng.normal(size=(1, 2, 3, 3))))
        assert out.shape == (1, 2, 6, 6)

    def test_relu_module(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0])
