"""Tests for the message catalogue and the bandwidth/latency model."""

import numpy as np
import pytest

from repro.network.messages import (
    MB,
    MessageSizes,
    hd_frame_bytes,
    student_payload_bytes,
)
from repro.network.model import NetworkModel, TrafficAccountant


class TestMessageSizes:
    def test_paper_sizes_match_table4(self):
        sizes = MessageSizes.paper()
        assert sizes.frame_to_server / MB == pytest.approx(2.637, abs=1e-3)
        assert sizes.student_diff_partial / MB == pytest.approx(0.395, abs=1e-3)
        assert sizes.student_full / MB == pytest.approx(1.846, abs=1e-3)
        assert sizes.teacher_prediction / MB == pytest.approx(0.879, abs=1e-3)

    def test_keyframe_totals_match_table4(self):
        sizes = MessageSizes.paper()
        assert sizes.keyframe_total(partial=True) / MB == pytest.approx(3.032, abs=2e-3)
        assert sizes.keyframe_total(partial=False) / MB == pytest.approx(4.483, abs=2e-3)
        assert sizes.naive_total() / MB == pytest.approx(3.516, abs=2e-3)

    def test_partial_reduces_downlink(self):
        sizes = MessageSizes.paper()
        assert sizes.student_diff_partial < sizes.teacher_prediction
        assert sizes.teacher_prediction < sizes.student_full

    def test_hd_frame_bytes(self):
        assert hd_frame_bytes() == 720 * 1280 * 3
        assert hd_frame_bytes(100, 100, 1) == 10000

    def test_student_payload_float32(self):
        assert student_payload_bytes(1000) == 4000

    def test_from_student_consistency(self):
        sizes = MessageSizes.from_student(total_params=480_000,
                                          trainable_params=100_000)
        assert sizes.student_full == 480_000 * 4
        assert sizes.student_diff_partial == 100_000 * 4
        assert sizes.frame_to_server == hd_frame_bytes()


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(bandwidth_mbps=80.0, base_latency_s=0.0)
        one_mb = 10**6 / 8  # bytes whose transfer takes 1/80 s at 80 Mbps...
        assert net.transfer_time(10**6) == pytest.approx(8 / 80.0)

    def test_paper_keyframe_rtt(self):
        # 3.032 MB at 80 Mbps ~ 0.303 s + small propagation (section 5.3).
        net = NetworkModel(bandwidth_mbps=80.0)
        sizes = MessageSizes.paper()
        t = net.round_trip_time(sizes.frame_to_server, sizes.student_diff_partial)
        assert t == pytest.approx(0.303, abs=0.02)

    def test_lower_bandwidth_slower(self):
        fast = NetworkModel(bandwidth_mbps=80.0)
        slow = NetworkModel(bandwidth_mbps=8.0)
        assert slow.transfer_time(10**6) > 9 * fast.transfer_time(10**6) * 0.9

    def test_base_latency_added(self):
        net = NetworkModel(bandwidth_mbps=80.0, base_latency_s=0.05)
        assert net.transfer_time(0) == pytest.approx(0.05)

    @pytest.mark.parametrize("kwargs", [
        {"bandwidth_mbps": 0.0},
        {"bandwidth_mbps": -1.0},
        {"base_latency_s": -0.1},
    ])
    def test_invalid_params_rejected(self, kwargs):
        with pytest.raises(ValueError):
            NetworkModel(**kwargs)


class TestTrafficAccountant:
    def test_totals(self):
        acc = TrafficAccountant()
        acc.record(0.0, 1000, "up")
        acc.record(1.0, 500, "down")
        assert acc.total_bytes == 1500
        assert acc.bytes_by_direction() == (1000, 500)
        assert acc.num_transfers == 2

    def test_traffic_mbps(self):
        acc = TrafficAccountant()
        acc.record(0.0, 10**6, "up")
        assert acc.traffic_mbps(1.0) == pytest.approx(8.0)

    def test_zero_time_safe(self):
        acc = TrafficAccountant()
        assert acc.traffic_mbps(0.0) == 0.0

    def test_invalid_direction_rejected(self):
        with pytest.raises(ValueError):
            TrafficAccountant().record(0.0, 1, "sideways")
