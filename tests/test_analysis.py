"""Tests for the post-run analysis utilities and the ASCII plotter."""

import numpy as np
import pytest

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.traces import (
    accuracy_timeline,
    delay_histogram,
    keyframe_intervals,
    stride_timeline,
    summarize_run,
    traffic_timeline,
)
from repro.runtime.stats import FrameRecord, KeyFrameRecord, RunStats


def demo_stats():
    stats = RunStats(label="demo")
    for i in range(40):
        stats.frames.append(
            FrameRecord(
                index=i,
                is_key=i % 10 == 0,
                miou=0.5 + 0.01 * i,
                sim_time=0.143 * (i + 1),
                stride=8.0 + (i // 10),
                update_delay=3 if i % 10 == 4 else None,
            )
        )
    for i in range(0, 40, 10):
        stats.key_frames.append(
            KeyFrameRecord(index=i, metric=0.8, initial_metric=0.6, steps=4,
                           up_bytes=2_000_000, down_bytes=400_000)
        )
    stats.total_time_s = 0.143 * 40
    stats.total_up_bytes = 8_000_000
    stats.total_down_bytes = 1_600_000
    return stats


class TestTimelines:
    def test_stride_timeline_shapes(self):
        idx, strides = stride_timeline(demo_stats())
        assert idx.shape == strides.shape == (40,)
        assert strides[0] == 8.0

    def test_accuracy_timeline_smoothing(self):
        idx, smooth = accuracy_timeline(demo_stats(), window=5)
        assert len(smooth) == 40 - 4
        # Smoothed series of a linear ramp is still increasing.
        assert (np.diff(smooth) > 0).all()

    def test_accuracy_timeline_short_run(self):
        stats = demo_stats()
        idx, smooth = accuracy_timeline(stats, window=100)
        assert len(smooth) == 40  # unsmoothed fallback

    def test_accuracy_window_validated(self):
        with pytest.raises(ValueError):
            accuracy_timeline(demo_stats(), window=0)

    def test_keyframe_intervals(self):
        gaps = keyframe_intervals(demo_stats())
        np.testing.assert_array_equal(gaps, [10, 10, 10])

    def test_keyframe_intervals_single(self):
        stats = RunStats()
        stats.key_frames.append(
            KeyFrameRecord(index=0, metric=1, initial_metric=1, steps=0,
                           up_bytes=0, down_bytes=0)
        )
        assert keyframe_intervals(stats).size == 0

    def test_delay_histogram(self):
        histo = delay_histogram(demo_stats())
        assert histo == {3: 4}

    def test_traffic_timeline_binning(self):
        centers, mbps = traffic_timeline(demo_stats(), num_bins=4)
        assert len(centers) == len(mbps) == 4
        # All transfers accounted for: integral equals total bytes.
        widths = np.diff(np.linspace(0, demo_stats().total_time_s, 5))
        total_bits = (mbps * widths).sum() * 1e6
        assert total_bits == pytest.approx(4 * 2_400_000 * 8, rel=1e-6)

    def test_traffic_timeline_empty(self):
        centers, mbps = traffic_timeline(RunStats())
        assert centers.size == 0 and mbps.size == 0


class TestSummary:
    def test_contains_headline_numbers(self):
        text = summarize_run(demo_stats())
        assert "demo" in text
        assert "FPS" in text
        assert "key-frame gaps" in text
        assert "update delays" in text

    def test_handles_empty_run(self):
        text = summarize_run(RunStats())
        assert "(unnamed)" in text


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        out = ascii_plot([0, 1, 2], {"a": [1, 2, 3], "b": [3, 2, 1]},
                         width=20, height=6, title="T")
        assert "T" in out
        assert "o=a" in out and "x=b" in out
        assert "o" in out and "x" in out

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot([0, 1], {"a": [1, 2, 3]})

    def test_empty_data(self):
        assert "(no data)" in ascii_plot([], {})

    def test_constant_series_safe(self):
        out = ascii_plot([0, 1], {"flat": [2.0, 2.0]}, width=10, height=4)
        assert "o" in out

    def test_respects_y_bounds(self):
        out = ascii_plot([0, 1], {"a": [0.5, 0.6]}, y_min=0, y_max=10,
                         width=10, height=5)
        # First rendered row label should be the max bound.
        assert "10.00" in out.splitlines()[0]
