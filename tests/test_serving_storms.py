"""Seeded storms against a live overload-armed server (ISSUE 6).

The tentpole acceptance property, at small scale so the tier-1 gate can
afford it: under **every** named storm at a fixed seed the server never
wedges — honest traffic resolves (served, or refused with a *typed*
REJECT carrying a ``retry_after`` hint), attackers are torn down by the
receive budget / idle reaper, the process exits 0, and no shm segment
leaks.  The full-scale throughput floors live in
``benchmarks/test_perf_overload.py``; plan construction determinism is
unit-tested in ``tests/test_overload.py``.
"""

import pathlib

import pytest

from repro import obs
from repro.serving.storms import STORM_NAMES, run_storm, storm_plan

pytestmark = pytest.mark.storm


def _shm_segments():
    shm_dir = pathlib.Path("/dev/shm")
    if not shm_dir.is_dir():
        return None
    return {p for p in shm_dir.iterdir() if p.name.startswith("psm_")}


@pytest.mark.parametrize("transport", ["shm", "socket"])
@pytest.mark.parametrize("name", STORM_NAMES)
def test_storm_never_wedges_server(name, transport):
    before = _shm_segments()
    plan = storm_plan(name, seed=0, frames=2)
    # Metrics armed in the server process (ISSUE 8): the storm must
    # still resolve identically, and its report must carry the
    # admission/overload accounting.  Both wire transports face the
    # same storms — the receive budget tears down a half-header staller
    # whether it wedged a ring slot or a TCP stream (ISSUE 10).
    report = run_storm(plan, loris_hold_s=10.0, job_timeout_s=120.0,
                       obs_config=obs.ObsConfig(metrics=True),
                       transport=transport)
    assert report.name == name and report.control
    # No wedge: the server drained the storm and exited cleanly, and
    # every honest job resolved one way or the other.
    assert not report.wedged
    assert report.server_exit == 0
    assert report.errors == 0
    assert report.ok + report.rejected == len(plan.jobs)
    assert report.ok >= 1  # the storm never starves *all* honest traffic
    # Refusals, if any, are typed and always carry a retry hint.
    assert set(report.reject_reasons) <= {"overloaded", "capacity"}
    assert report.hinted == report.rejected
    # The server's final accounting survived the storm (ISSUE 8): a
    # typed exit reason and a metrics snapshot whose admission counters
    # cover every honest outcome — never a silent None.
    runtime = report.runtime_report
    assert runtime is not None
    assert runtime["exit_reason"] == "quiesced"
    counters = runtime["metrics"]["counters"]
    assert counters.get("admission.accepted", 0) >= report.ok
    rejects = sum(
        v for k, v in counters.items() if k.startswith("admission.rejected.")
    )
    assert rejects >= report.rejected
    if before is not None:
        leaked = _shm_segments() - before
        assert not leaked, f"leaked shm segments: {leaked}"


@pytest.mark.parametrize("transport", ["shm", "socket"])
def test_slow_loris_honest_traffic_completes(transport):
    """The loris stallers and the never-BYE ghost must not cost any
    honest client its session: budget teardown, not queue starvation."""
    plan = storm_plan("slow-loris", seed=0, frames=2)
    report = run_storm(plan, loris_hold_s=10.0, job_timeout_s=120.0,
                       transport=transport)
    assert not report.wedged
    assert report.ok == len(plan.jobs)
    assert report.rejected == 0
