"""Hypothesis property tests for the dynamic-bandwidth link model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.dynamic import DynamicNetworkModel
from repro.network.model import NetworkModel


def schedule_strategy():
    """Random valid piecewise-constant schedules starting at t=0."""
    return st.lists(
        st.tuples(
            st.floats(0.1, 100.0),   # segment gap
            st.floats(1.0, 500.0),   # bandwidth
        ),
        min_size=0,
        max_size=5,
    ).map(
        lambda gaps: [(0.0, 80.0)]
        + [
            (round(sum(g for g, _ in gaps[: i + 1]), 6), bw)
            for i, (_, bw) in enumerate(gaps)
        ]
    )


class TestDynamicProperties:
    @given(schedule=schedule_strategy(), nbytes=st.integers(1, 10**8),
           now=st.floats(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_transfer_time_positive_and_finite(self, schedule, nbytes, now):
        net = DynamicNetworkModel(schedule, base_latency_s=0.0)
        t = net.transfer_time(nbytes, now)
        assert np.isfinite(t)
        assert t > 0

    @given(schedule=schedule_strategy(), nbytes=st.integers(1, 10**7),
           now=st.floats(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_extreme_bandwidths(self, schedule, nbytes, now):
        # A transfer can never beat the fastest segment or lose to the
        # slowest one.
        net = DynamicNetworkModel(schedule, base_latency_s=0.0)
        bandwidths = [bw for _, bw in schedule]
        fastest = NetworkModel(max(bandwidths), base_latency_s=0.0)
        slowest = NetworkModel(min(bandwidths), base_latency_s=0.0)
        t = net.transfer_time(nbytes, now)
        assert fastest.transfer_time(nbytes) - 1e-9 <= t
        assert t <= slowest.transfer_time(nbytes) + 1e-9

    @given(schedule=schedule_strategy(),
           small=st.integers(1, 10**6), extra=st.integers(1, 10**6),
           now=st.floats(0, 100))
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_payload(self, schedule, small, extra, now):
        net = DynamicNetworkModel(schedule, base_latency_s=0.0)
        assert net.transfer_time(small + extra, now) >= net.transfer_time(
            small, now
        ) - 1e-9

    @given(nbytes=st.integers(1, 10**7), now=st.floats(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_constant_schedule_matches_static(self, nbytes, now):
        dyn = DynamicNetworkModel([(0.0, 42.0)], base_latency_s=0.0)
        static = NetworkModel(42.0, base_latency_s=0.0)
        assert dyn.transfer_time(nbytes, now) == pytest.approx(
            static.transfer_time(nbytes), rel=1e-9
        )

    @given(schedule=schedule_strategy(), up=st.integers(1, 10**6),
           down=st.integers(1, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_is_sum_of_sequenced_legs(self, schedule, up, down):
        net = DynamicNetworkModel(schedule, base_latency_s=0.0)
        t_up = net.transfer_time(up, 0.0)
        t_down = net.transfer_time(down, t_up)
        assert net.round_trip_time(up, down, 0.0) == pytest.approx(
            t_up + t_down, rel=1e-9
        )
