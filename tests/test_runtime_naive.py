"""Tests for the naive-offloading baseline."""

import numpy as np
import pytest

from repro.models.teacher import OracleTeacher
from repro.network.model import NetworkModel
from repro.runtime.naive import DEFAULT_T_PREP, NaiveOffloadClient
from repro.video.generator import SyntheticVideo, VideoConfig


def frames(n, seed=0):
    video = SyntheticVideo(VideoConfig(seed=seed, height=32, width=48))
    return list(video.frames(n))


class TestNaiveOffload:
    def test_every_frame_crosses_network(self):
        client = NaiveOffloadClient(OracleTeacher())
        stats = client.run(frames(10))
        assert all(f.is_key for f in stats.frames)
        assert stats.total_up_bytes == 10 * client.sizes.frame_to_server
        assert stats.total_down_bytes == 10 * client.sizes.teacher_prediction

    def test_perfect_accuracy_against_oracle(self):
        client = NaiveOffloadClient(OracleTeacher())
        stats = client.run(frames(5))
        assert stats.mean_miou == pytest.approx(1.0)

    def test_paper_throughput_at_80mbps(self):
        # Calibrated to the paper's measured 2.09 FPS.
        client = NaiveOffloadClient(OracleTeacher())
        stats = client.run(frames(10))
        assert stats.throughput_fps == pytest.approx(2.09, abs=0.15)

    def test_throughput_scales_with_bandwidth(self):
        fast = NaiveOffloadClient(
            OracleTeacher(), network=NetworkModel(bandwidth_mbps=80)
        ).run(frames(8))
        slow = NaiveOffloadClient(
            OracleTeacher(), network=NetworkModel(bandwidth_mbps=8)
        ).run(frames(8))
        # 10x narrower link: naive throughput collapses (no async buffer).
        assert slow.throughput_fps < fast.throughput_fps / 3

    def test_per_frame_time_breakdown(self):
        net = NetworkModel(bandwidth_mbps=80.0)
        client = NaiveOffloadClient(OracleTeacher(), network=net, t_prep=0.0)
        stats = client.run(frames(4))
        expected = 4 * (
            net.transfer_time(client.sizes.frame_to_server)
            + 0.044
            + net.transfer_time(client.sizes.teacher_prediction)
        )
        assert stats.total_time_s == pytest.approx(expected, rel=1e-6)

    def test_no_key_frame_records(self):
        # Naive offloading has no distillation, so key_frames stays empty
        # (is_key on frames marks network crossings instead).
        stats = NaiveOffloadClient(OracleTeacher()).run(frames(5))
        assert stats.key_frames == []
        assert stats.mean_distill_steps == 0.0
