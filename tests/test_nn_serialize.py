"""Tests for state-dict serialization, diffing and byte accounting."""

import numpy as np
import pytest

from repro.models.student import StudentNet, partial_freeze
from repro.nn.serialize import (
    apply_state_dict,
    clone_state_dict,
    param_bytes,
    state_dict_bytes,
    state_dict_diff,
)


@pytest.fixture(scope="module")
def student():
    return StudentNet(width=0.25, seed=7)


class TestCloneAndBytes:
    def test_clone_is_deep(self, student):
        state = student.state_dict()
        cloned = clone_state_dict(state)
        key = next(iter(cloned))
        cloned[key] += 1.0
        assert not np.allclose(cloned[key], state[key])

    def test_param_bytes_float32(self):
        arrays = [np.zeros((2, 3), dtype=np.float32), np.zeros(5, dtype=np.float32)]
        assert param_bytes(arrays) == (6 + 5) * 4

    def test_state_dict_bytes_counts_everything(self, student):
        state = student.state_dict()
        assert state_dict_bytes(state) == sum(v.nbytes for v in state.values())


class TestDiff:
    def test_full_diff_contains_all_params(self, student):
        student.unfreeze()
        diff = state_dict_diff(student, trainable_only=False)
        param_names = {n for n, _ in student.named_parameters()}
        assert param_names <= set(diff)

    def test_partial_diff_excludes_frozen(self):
        student = StudentNet(width=0.25, seed=7)
        partial_freeze(student)
        diff = state_dict_diff(student, trainable_only=True)
        assert not any(name.startswith("in1") for name in diff)
        assert not any(name.startswith("sb4") for name in diff)
        assert any(name.startswith("sb5") for name in diff)
        assert any(name.startswith("out3") for name in diff)

    def test_partial_diff_smaller_than_full(self):
        student = StudentNet(width=0.25, seed=7)
        partial_freeze(student)
        partial = state_dict_bytes(state_dict_diff(student, trainable_only=True))
        student.unfreeze()
        full = state_dict_bytes(state_dict_diff(student, trainable_only=False))
        assert partial < 0.5 * full

    def test_partial_diff_includes_trainable_bn_buffers(self):
        student = StudentNet(width=0.25, seed=7)
        partial_freeze(student)
        diff = state_dict_diff(student, trainable_only=True, include_buffers=True)
        assert any("sb5.bn.running_mean" in n for n in diff)
        assert not any("sb1.bn.running_mean" in n for n in diff)

    def test_diff_arrays_are_copies(self):
        student = StudentNet(width=0.25, seed=7)
        diff = state_dict_diff(student, trainable_only=False)
        name = next(iter(diff))
        diff[name] += 99.0
        assert not np.allclose(diff[name], dict(student.named_parameters())[name].data)


class TestApply:
    def test_apply_partial_update(self):
        src = StudentNet(width=0.25, seed=7)
        dst = StudentNet(width=0.25, seed=7)
        partial_freeze(src)
        for p in src.trainable_parameters():
            p.data += 0.5
        update = state_dict_diff(src, trainable_only=True)
        apply_state_dict(dst, update)
        np.testing.assert_allclose(
            dst.sb5.conv1x1.weight.data, src.sb5.conv1x1.weight.data
        )
        # Frozen (front) part of dst untouched == identical seeds anyway.
        np.testing.assert_allclose(dst.in1.weight.data, src.in1.weight.data)

    def test_apply_unknown_key_raises(self, student):
        with pytest.raises(KeyError):
            apply_state_dict(student, {"nonexistent.weight": np.zeros(1)})

    def test_apply_shape_mismatch_raises(self, student):
        name = next(n for n, _ in student.named_parameters())
        with pytest.raises(ValueError):
            apply_state_dict(student, {name: np.zeros((1, 1, 1, 1))})

    def test_apply_then_predict_consistent(self, rng):
        # After applying the server's update the client must produce the
        # same predictions as the server's student.
        server = StudentNet(width=0.25, seed=7)
        client = StudentNet(width=0.25, seed=7)
        partial_freeze(server)
        for p in server.trainable_parameters():
            p.data += rng.normal(0, 0.05, size=p.data.shape).astype(np.float32)
        apply_state_dict(client, state_dict_diff(server, trainable_only=True))
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        server.eval(), client.eval()
        np.testing.assert_array_equal(server.predict(frame), client.predict(frame))
