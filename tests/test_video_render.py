"""Tests for the rasterizer: frame/label consistency and determinism."""

import numpy as np
import pytest

from repro.video.generator import SyntheticVideo, VideoConfig
from repro.video.render import render_background, render_scene
from repro.video.scene import Camera, CameraModel, Scene, SceneObject


def single_object_scene(class_id=3, center=(32.0, 48.0), radii=(10.0, 12.0)):
    obj = SceneObject(
        class_id=class_id,
        center=np.array(center),
        velocity=np.zeros(2),
        radii=radii,
        texture_phase=0.3,
        texture_freq=0.5,
        texture_drift=0.0,
        brightness=0.9,
    )
    cam = Camera(model=CameraModel.FIXED)
    return Scene([obj], cam, (64, 96), np.random.default_rng(0))


class TestRenderScene:
    def test_shapes_and_dtypes(self):
        frame, label = render_scene(single_object_scene(), 64, 96)
        assert frame.shape == (3, 64, 96)
        assert frame.dtype == np.float32
        assert label.shape == (64, 96)
        assert label.dtype == np.int64

    def test_label_matches_object_footprint(self):
        scene = single_object_scene(class_id=3)
        _, label = render_scene(scene, 64, 96)
        assert label[32, 48] == 3  # center inside
        assert label[0, 0] == 0    # far corner is background
        ys, xs = np.nonzero(label == 3)
        # Footprint within the ellipse's bounding box.
        assert ys.min() >= 32 - 10 - 1 and ys.max() <= 32 + 10 + 1
        assert xs.min() >= 48 - 12 - 1 and xs.max() <= 48 + 12 + 1

    def test_later_objects_occlude_earlier(self):
        scene = single_object_scene(class_id=1)
        scene.objects.append(
            SceneObject(
                class_id=2,
                center=np.array([32.0, 48.0]),
                velocity=np.zeros(2),
                radii=(5.0, 5.0),
                texture_phase=0.0,
                texture_freq=0.4,
                texture_drift=0.0,
                brightness=0.8,
            )
        )
        _, label = render_scene(scene, 64, 96)
        assert label[32, 48] == 2  # the later (nearer) object wins

    def test_offscreen_object_invisible(self):
        scene = single_object_scene(center=(-500.0, -500.0))
        _, label = render_scene(scene, 64, 96)
        assert (label == 0).all()

    def test_rendering_is_pure(self):
        scene = single_object_scene()
        f1, l1 = render_scene(scene, 64, 96)
        f2, l2 = render_scene(scene, 64, 96)
        np.testing.assert_array_equal(f1, f2)
        np.testing.assert_array_equal(l1, l2)

    def test_camera_offset_shifts_object(self):
        scene = single_object_scene(center=(32.0, 48.0))
        scene.camera._offset = np.array([10.0, 0.0])
        _, label = render_scene(scene, 64, 96)
        assert label[22, 48] != 0  # moved up by the offset
        assert label[32 + 11, 48] == 0


class TestBackground:
    def test_scrolls_with_camera(self):
        a = render_background(32, 32, (0.0, 0.0), 0.0)
        b = render_background(32, 32, (5.0, 3.0), 0.0)
        assert not np.allclose(a, b)

    def test_phase_animates(self):
        a = render_background(32, 32, (0.0, 0.0), 0.0)
        b = render_background(32, 32, (0.0, 0.0), 1.0)
        assert not np.allclose(a, b)

    def test_reasonable_dynamic_range(self):
        bg = render_background(64, 96, (0.0, 0.0), 0.0)
        assert bg.min() > -0.5 and bg.max() < 1.5


class TestVideoDeterminism:
    def test_same_seed_same_frames(self):
        cfg = VideoConfig(seed=5, height=32, width=32, num_objects=2)
        a = SyntheticVideo(cfg)
        b = SyntheticVideo(cfg)
        for (fa, la), (fb, lb) in zip(a.frames(10), b.frames(10)):
            np.testing.assert_array_equal(fa, fb)
            np.testing.assert_array_equal(la, lb)

    def test_reset_rewinds(self):
        video = SyntheticVideo(VideoConfig(seed=2, height=32, width=32))
        first = [l.copy() for _, l in video.frames(5)]
        video.reset()
        again = [l.copy() for _, l in video.frames(5)]
        for a, b in zip(first, again):
            np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SyntheticVideo(VideoConfig(seed=1, height=32, width=32))
        b = SyntheticVideo(VideoConfig(seed=2, height=32, width=32))
        fa = next(iter(a.frames(1)))[0]
        fb = next(iter(b.frames(1)))[0]
        assert not np.allclose(fa, fb)

    def test_temporal_coherence(self):
        # Adjacent frames must be far more similar than distant frames —
        # the property ShadowTutor exploits.
        video = SyntheticVideo(VideoConfig(seed=3, height=32, width=32,
                                           num_objects=2, speed=0.5))
        frames = [f.copy() for f, _ in video.frames(40)]
        near = np.abs(frames[1] - frames[0]).mean()
        far = np.abs(frames[39] - frames[0]).mean()
        assert near < far

    def test_shot_cut_respawns_objects(self):
        video = SyntheticVideo(VideoConfig(seed=4, height=32, width=32,
                                           num_objects=3, shot_length=5))
        labels = [l.copy() for _, l in video.frames(12)]
        # A cut happens between frame 4 and 5: labels change sharply.
        diff_across_cut = (labels[5] != labels[4]).mean()
        diff_within_shot = (labels[3] != labels[2]).mean()
        assert diff_across_cut >= diff_within_shot
