"""Tests for the StudentNet architecture (paper Figure 3)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models.student import StudentBlock, StudentNet, partial_freeze


class TestStudentBlock:
    def test_output_shape_same_channels(self, rng):
        block = StudentBlock(8, 8, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 8, 6, 6))))
        assert out.shape == (1, 8, 6, 6)

    def test_output_shape_channel_change(self, rng):
        block = StudentBlock(4, 12, rng=rng)
        out = block(Tensor(rng.normal(size=(1, 4, 6, 6))))
        assert out.shape == (1, 12, 6, 6)

    def test_projection_only_when_needed(self, rng):
        same = StudentBlock(8, 8, rng=rng)
        diff = StudentBlock(4, 8, rng=rng)
        assert same.project is None
        assert diff.project is not None

    def test_contains_paper_ops(self, rng):
        # Figure 3a: BN, 3x3, 3x1, 1x3, 1x1.
        block = StudentBlock(4, 4, rng=rng)
        assert block.conv3x3.kernel_size == (3, 3)
        assert block.conv3x1.kernel_size == (3, 1)
        assert block.conv1x3.kernel_size == (1, 3)
        assert block.conv1x1.kernel_size == (1, 1)

    def test_residual_path_carries_gradient(self, rng):
        block = StudentBlock(4, 4, rng=rng)
        # Zero out the conv path: output = relu(residual).
        for conv in (block.conv3x3, block.conv3x1, block.conv1x3, block.conv1x1):
            conv.weight.data[:] = 0.0
            conv.bias.data[:] = 0.0
        x = Tensor(np.abs(rng.normal(size=(1, 4, 4, 4))).astype(np.float32))
        block.eval()
        out = block(x)
        np.testing.assert_allclose(out.data, x.data, rtol=1e-5)


class TestStudentNet:
    @pytest.fixture(scope="class")
    def student(self):
        return StudentNet(width=0.25, seed=3)

    def test_output_shape_matches_input(self, student, rng):
        out = student(Tensor(rng.normal(size=(1, 3, 16, 24))))
        assert out.shape == (1, 9, 16, 24)

    def test_unbatched_input_promoted(self, student, rng):
        out = student(Tensor(rng.normal(size=(3, 16, 16))))
        assert out.shape == (1, 9, 16, 16)

    def test_rejects_indivisible_dims(self, student, rng):
        with pytest.raises(ValueError):
            student(Tensor(rng.normal(size=(1, 3, 14, 16))))

    def test_width_scales_parameters(self):
        small = StudentNet(width=0.25).num_parameters()
        large = StudentNet(width=1.0).num_parameters()
        assert large > 4 * small

    def test_paper_width_parameter_count(self):
        # Paper: ~0.48 M params; same order of magnitude at width 1.0.
        n = StudentNet(width=1.0).num_parameters()
        assert 2e5 < n < 2e6

    def test_front_back_partition_complete(self):
        names = set(StudentNet.FRONT_MODULES) | set(StudentNet.BACK_MODULES)
        student = StudentNet(width=0.25)
        top_level = {n.split(".", 1)[0] for n, _ in student.named_parameters()}
        assert top_level == names

    def test_predict_returns_class_map(self, student, rng):
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        pred = student.predict(frame)
        assert pred.shape == (16, 16)
        assert pred.dtype in (np.int64, np.intp)
        assert (pred >= 0).all() and (pred < 9).all()

    def test_deterministic_given_seed(self, rng):
        a = StudentNet(width=0.25, seed=11)
        b = StudentNet(width=0.25, seed=11)
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        a.eval(), b.eval()
        np.testing.assert_array_equal(a.predict(frame), b.predict(frame))


class TestPartialFreeze:
    def test_trainable_fraction_near_paper(self):
        # Paper: 21.4% of parameters trainable at the chosen freeze point.
        student = StudentNet(width=1.0)
        fraction = partial_freeze(student)
        assert 0.10 < fraction < 0.45

    def test_front_frozen_back_trainable(self):
        student = StudentNet(width=0.25)
        partial_freeze(student)
        for name, p in student.named_parameters():
            top = name.split(".", 1)[0]
            if top in StudentNet.FRONT_MODULES:
                assert p.frozen, name
            else:
                assert not p.frozen, name

    def test_refreeze_is_idempotent(self):
        student = StudentNet(width=0.25)
        f1 = partial_freeze(student)
        f2 = partial_freeze(student)
        assert f1 == f2

    def test_partial_backward_stops_at_boundary(self, rng):
        # After backward, no frozen parameter may hold a gradient and
        # every trainable one must.
        student = StudentNet(width=0.25)
        partial_freeze(student)
        student.train()
        out = student(Tensor(rng.normal(size=(1, 3, 16, 16))))
        (out**2).sum().backward()
        for name, p in student.named_parameters():
            if p.frozen:
                assert p.grad is None, name
            else:
                assert p.grad is not None, name

    def test_partial_backward_faster_than_full(self, rng):
        # The frozen front-end skips gradient work; wall-clock should
        # reflect it (generous margin to avoid flakiness).
        import time

        x = rng.normal(size=(1, 3, 32, 48))

        def time_backward(student):
            student.train()
            t0 = time.perf_counter()
            for _ in range(3):
                student.zero_grad()
                out = student(Tensor(x))
                (out**2).sum().backward()
            return time.perf_counter() - t0

        full = StudentNet(width=0.5, seed=0)
        full.unfreeze()
        t_full = time_backward(full)
        partial = StudentNet(width=0.5, seed=0)
        partial_freeze(partial)
        t_partial = time_backward(partial)
        assert t_partial < t_full * 1.05
