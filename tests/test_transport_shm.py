"""Tests for the shared-memory ring transport.

Ring mechanics (sequence handshake, wrap-around, fragmentation),
endpoint semantics (blocking and non-blocking), the cross-process
path, and the transport registry.
"""

import os
import select

import numpy as np
import pytest

from repro.runtime.server import ServerReply
from repro.transport import registry
from repro.transport.shm import ShmRing, ShmTransport, run_in_subprocess, spawn_shm_pair


def _pair(**kw):
    kw.setdefault("slots", 4)
    kw.setdefault("slot_nbytes", 1 << 16)
    kw.setdefault("timeout_s", 10.0)
    return spawn_shm_pair(**kw)


class TestRing:
    def test_roundtrip_in_process(self):
        a, b = _pair()
        try:
            arr = np.arange(12, dtype=np.float32).reshape(3, 4)
            a.send({"x": arr}, nbytes=arr.nbytes)
            msg = b.recv()
            assert msg["x"].tobytes() == arr.tobytes()
        finally:
            b.close(), a.close()

    def test_wraparound_many_messages(self):
        """Sequence counters stay correct far past one ring revolution."""
        a, b = _pair()
        try:
            for i in range(37):  # 37 messages through 4 slots
                payload = np.full((5,), i, dtype=np.int32)
                a.send(payload, nbytes=payload.nbytes)
                out = b.recv()
                np.testing.assert_array_equal(out, payload)
        finally:
            b.close(), a.close()

    def test_fragmented_message_reassembles(self):
        a, b = _pair(slots=8, slot_nbytes=4096)
        try:
            frame = np.random.default_rng(0).random((3, 32, 48)).astype(np.float32)
            label = np.random.default_rng(1).integers(0, 9, (32, 48))
            a.send((frame, label), nbytes=frame.nbytes)  # ~25 KB over 4 KB slots
            got_frame, got_label = b.recv()
            assert got_frame.tobytes() == frame.tobytes()
            assert got_label.tobytes() == label.tobytes()
            assert b.last_recv_nbytes > frame.nbytes
        finally:
            b.close(), a.close()

    def test_send_timeout_when_ring_full(self):
        a, b = _pair(slots=2, slot_nbytes=4096, timeout_s=0.2)
        try:
            payload = np.zeros(64, np.uint8)
            a.send(payload, 64)
            a.send(payload, 64)
            with pytest.raises(TimeoutError):
                a.send(payload, 64)  # nobody drains: both slots taken
        finally:
            b.close(), a.close()

    def test_recv_timeout_when_empty(self):
        a, b = _pair(timeout_s=0.2)
        try:
            with pytest.raises(TimeoutError):
                b.recv()
        finally:
            b.close(), a.close()

    def test_close_is_idempotent_and_unlinks(self):
        a, b = _pair()
        b.close()
        b.close()
        a.close()
        a.close()

    def test_attach_sees_owner_data(self):
        ring = ShmRing(slots=2, slot_nbytes=4096)
        try:
            other = ShmRing.attach(ring.describe())
            ring.send_message(np.arange(4, dtype=np.int64), timeout_s=1.0)
            out, measured = other.recv_message(timeout_s=1.0)
            np.testing.assert_array_equal(out, np.arange(4))
            assert measured > 0
            other.close()
        finally:
            ring.close()

    def test_ring_validation(self):
        with pytest.raises(ValueError):
            ShmRing(slots=1)
        with pytest.raises(ValueError):
            ShmRing(slot_nbytes=8)


class TestNonBlocking:
    def test_isend_completes_immediately(self):
        a, b = _pair()
        try:
            req = a.isend(np.zeros(3, np.float32), nbytes=12)
            assert req.test()
            np.testing.assert_array_equal(b.recv(), np.zeros(3))
        finally:
            b.close(), a.close()

    def test_irecv_polls(self):
        a, b = _pair()
        try:
            req = b.irecv()
            assert not req.test()
            payload = np.arange(6, dtype=np.float64)
            a.send(payload, nbytes=payload.nbytes)
            got = req.wait()
            np.testing.assert_array_equal(got, payload)
            assert req.payload() is got
        finally:
            b.close(), a.close()

    def test_measured_sizes_match_wire(self):
        from repro.transport import wire

        a, b = _pair()
        try:
            msg = {"w": np.ones((4, 4), np.float32)}
            a.send(msg, nbytes=64)
            b.recv()
            assert b.last_recv_nbytes == wire.encoded_nbytes(msg)
        finally:
            b.close(), a.close()


def _echo_server(endpoint):
    """Child process: echoes messages until the sentinel arrives."""
    while True:
        msg = endpoint.recv()
        if msg is None:
            break
        endpoint.send(msg, 0)


class TestSubprocess:
    def test_echo_across_process_boundary(self):
        endpoint, proc = run_in_subprocess(_echo_server, timeout_s=30.0)
        try:
            frame = np.random.default_rng(2).random((3, 48, 64)).astype(np.float32)
            label = np.random.default_rng(3).integers(0, 9, (48, 64))
            endpoint.send((frame, label), nbytes=frame.nbytes)
            got_frame, got_label = endpoint.recv()
            assert got_frame.tobytes() == frame.tobytes()
            assert got_label.tobytes() == label.tobytes()
            reply = ServerReply(
                update={"w": frame}, metric=0.5, steps=2, initial_metric=0.25
            )
            endpoint.send(reply, nbytes=frame.nbytes)
            echoed = endpoint.recv()
            assert isinstance(echoed, ServerReply)
            assert echoed.update["w"].tobytes() == frame.tobytes()
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=20)
            endpoint.close()
        assert proc.exitcode == 0

    def test_streaming_through_tiny_ring(self):
        """Cross-process, a message much larger than the whole ring
        streams through slot by slot."""
        endpoint, proc = run_in_subprocess(
            _echo_server, slots=2, slot_nbytes=4096, timeout_s=30.0
        )
        try:
            big = np.random.default_rng(4).random((64, 1024)).astype(np.float32)
            endpoint.send(big, nbytes=big.nbytes)  # 256 KB through 8 KB of ring
            out = endpoint.recv()
            assert out.tobytes() == big.tobytes()
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=20)
            endpoint.close()
        assert proc.exitcode == 0


class TestRegistry:
    def test_builtins_registered(self):
        names = registry.available_transports()
        assert {"inproc", "pipe", "shm"} <= set(names)

    def test_unknown_transport_lists_available(self):
        with pytest.raises(KeyError, match="shm"):
            registry.get_transport("rdma")

    def test_inproc_cannot_spawn(self):
        with pytest.raises(ValueError):
            registry.spawn_server("inproc", lambda endpoint: None)

    def test_make_pair_shm(self):
        a, b = registry.make_pair("shm", slots=2, slot_nbytes=4096, timeout_s=5.0)
        try:
            a.send(np.ones(2, np.float32), 8)
            np.testing.assert_array_equal(b.recv(), np.ones(2))
        finally:
            b.close(), a.close()

    def test_make_pair_inproc_uses_sim_clock(self):
        from repro.network.model import NetworkModel
        from repro.runtime.clock import SimClock

        clock = SimClock()
        client, server = registry.make_pair(
            "inproc", clock=clock, network=NetworkModel(bandwidth_mbps=80.0)
        )
        client.send("frame", nbytes=10_000_000)
        assert server.recv() == "frame"
        assert clock.now > 0  # delivery advanced the simulated clock

    def test_custom_transport_registration(self):
        definition = registry.TransportDef(
            name="test-loop", description="test", make_pair=lambda **kw: (1, 2)
        )
        registry.register_transport(definition)
        try:
            assert registry.make_pair("test-loop") == (1, 2)
        finally:
            registry._REGISTRY.pop("test-loop")


@pytest.mark.skipif(not hasattr(os, "eventfd"), reason="eventfd is Linux-only")
class TestDoorbell:
    """The eventfd doorbells that replaced the blind nap escalation."""

    def test_in_process_attach_adopts_fds(self):
        ring = ShmRing(slots=2, slot_nbytes=4096)
        try:
            assert ring.doorbell_fd is not None
            other = ShmRing.attach(ring.describe())
            assert other.doorbell_fd == ring.doorbell_fd
            other.close()
        finally:
            ring.close()

    def test_foreign_lineage_falls_back_to_naps(self):
        # A spawn child re-imports the module and draws a new cookie;
        # the fd numbers in the descriptor then belong to a foreign fd
        # table and must be ignored, not selected on.
        ring = ShmRing(slots=2, slot_nbytes=4096)
        try:
            name, slots, nbytes, pub, rel, _cookie = ring.describe()
            foreign = ShmRing.attach((name, slots, nbytes, pub, rel, b"\0" * 8))
            assert foreign.doorbell_fd is None
            assert not foreign.arm_doorbell()
            # The ring still works, just bell-less.
            ring.send_message(np.arange(3, dtype=np.int64), timeout_s=1.0)
            out, _ = foreign.recv_message(timeout_s=1.0)
            np.testing.assert_array_equal(out, np.arange(3))
            foreign.close()
        finally:
            ring.close()

    def test_armed_bell_rings_on_publish(self):
        a, b = _pair()
        try:
            fd = b.doorbell_fd()
            assert fd is not None
            assert b.arm_doorbell()
            assert not b.poll()
            payload = np.ones(4, np.float32)
            a.send(payload, payload.nbytes)
            readable, _, _ = select.select([fd], [], [], 1.0)
            assert readable == [fd]
            b.disarm_doorbell()
            np.testing.assert_array_equal(b.recv(), payload)
        finally:
            b.close(), a.close()

    def test_unarmed_publish_skips_the_bell(self):
        # The fast path must not pay an eventfd_write per message: with
        # no waiter declared, publishing leaves the fd silent.
        a, b = _pair()
        try:
            fd = b.doorbell_fd()
            a.send(np.ones(2, np.float32), 8)
            readable, _, _ = select.select([fd], [], [], 0.0)
            assert readable == []
            b.recv()
        finally:
            b.close(), a.close()

    def test_fork_child_wakes_on_doorbell(self):
        # The cross-process path: the forked echo server's waits go
        # through the inherited doorbell fds (same lineage cookie), and
        # the protocol is indistinguishable from the nap version.
        endpoint, proc = run_in_subprocess(_echo_server, timeout_s=30.0)
        try:
            assert endpoint.doorbell_fd() is not None
            frame = np.random.default_rng(7).random((3, 16, 16)).astype(np.float32)
            for _ in range(3):
                endpoint.send(frame, nbytes=frame.nbytes)
                out = endpoint.recv()
                assert out.tobytes() == frame.tobytes()
        finally:
            endpoint.send(None, nbytes=1)
            proc.join(timeout=20)
            endpoint.close()
        assert proc.exitcode == 0
