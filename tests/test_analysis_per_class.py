"""Tests for per-class confusion analysis."""

import numpy as np
import pytest

from repro.analysis.per_class import StreamConfusion, stream_confusion
from repro.segmentation.classes import CLASS_INDEX


class TestStreamConfusion:
    def test_perfect_prediction_all_ones(self, rng):
        acc = StreamConfusion()
        label = rng.integers(0, 4, size=(8, 8))
        acc.update(label, label)
        assert all(v == pytest.approx(1.0) for v in acc.per_class_iou().values())

    def test_accumulates_over_frames(self, rng):
        acc = StreamConfusion()
        for _ in range(3):
            label = rng.integers(0, 3, size=(4, 4))
            acc.update(label, label)
        assert acc.matrix.sum() == 3 * 16

    def test_absent_classes_not_reported(self):
        acc = StreamConfusion()
        label = np.zeros((4, 4), dtype=np.int64)
        acc.update(label, label)
        assert list(acc.per_class_iou()) == ["background"]

    def test_known_iou_value(self):
        acc = StreamConfusion()
        label = np.zeros((4, 4), dtype=np.int64)
        label[:2, :] = CLASS_INDEX["person"]
        pred = np.zeros((4, 4), dtype=np.int64)
        pred[0, :] = CLASS_INDEX["person"]
        acc.update(pred, label)
        iou = acc.per_class_iou()["person"]
        assert iou == pytest.approx(4 / 8)

    def test_support_counts_pixels(self):
        acc = StreamConfusion()
        label = np.zeros((4, 4), dtype=np.int64)
        label[0, :2] = CLASS_INDEX["dog"]
        acc.update(label, label)
        support = acc.class_support()
        assert support["dog"] == 2
        assert support["background"] == 14

    def test_top_confusions_ordering(self):
        acc = StreamConfusion()
        label = np.zeros((6, 6), dtype=np.int64)
        label[:3, :] = CLASS_INDEX["horse"]
        pred = np.zeros((6, 6), dtype=np.int64)
        pred[:3, :] = CLASS_INDEX["dog"]  # horse consistently called dog
        pred[5, 0] = CLASS_INDEX["bird"]  # one stray background error
        acc.update(pred, label)
        confusions = acc.top_confusions(2)
        assert confusions[0][:2] == ("horse", "dog")
        assert confusions[0][2] == 18
        assert confusions[1][:2] == ("background", "bird")

    def test_no_confusions_when_perfect(self, rng):
        acc = StreamConfusion()
        label = rng.integers(0, 3, size=(6, 6))
        acc.update(label, label)
        assert acc.top_confusions() == []

    def test_report_renders(self, rng):
        acc = StreamConfusion()
        label = rng.integers(0, 4, size=(8, 8))
        pred = rng.integers(0, 4, size=(8, 8))
        acc.update(pred, label)
        text = acc.report()
        assert "per-class IoU" in text

    def test_builder_function(self, rng):
        pairs = []
        for _ in range(2):
            label = rng.integers(0, 3, size=(4, 4))
            pairs.append((label, label))
        acc = stream_confusion(pairs)
        assert acc.matrix.sum() == 32
