"""Tests for the LVS-style dataset registry and FPS resampling."""

import numpy as np
import pytest

from repro.segmentation.classes import CLASS_INDEX
from repro.video.dataset import (
    LVS_CATEGORIES,
    NAMED_VIDEOS,
    SCENERY_CLASSES,
    make_category_video,
    make_named_video,
    resample_fps,
)
from repro.video.scene import CameraModel


class TestCategories:
    def test_seven_categories(self):
        assert len(LVS_CATEGORIES) == 7

    def test_paper_category_grid(self):
        keys = {c.key for c in LVS_CATEGORIES}
        assert keys == {
            "fixed-animals", "fixed-people", "fixed-street",
            "moving-animals", "moving-people", "moving-street",
            "egocentric-people",
        }

    def test_scenery_class_pools(self):
        assert SCENERY_CLASSES["people"] == (CLASS_INDEX["person"],)
        assert CLASS_INDEX["automobile"] in SCENERY_CLASSES["street"]
        assert CLASS_INDEX["giraffe"] in SCENERY_CLASSES["animals"]
        assert all(0 not in pool for pool in SCENERY_CLASSES.values())

    def test_make_category_video_uses_spec(self):
        spec = LVS_CATEGORIES[0]
        video = make_category_video(spec, height=32, width=48)
        assert video.config.camera == spec.camera
        assert video.config.num_objects == spec.num_objects
        assert video.config.shape == (32, 48)

    def test_video_labels_only_from_pool(self):
        spec = LVS_CATEGORIES[1]  # fixed-people
        video = make_category_video(spec, height=32, width=48)
        seen = set()
        for _, label in video.frames(20):
            seen |= set(np.unique(label))
        assert seen <= {0, CLASS_INDEX["person"]}


class TestNamedVideos:
    def test_figure4_videos_present(self):
        assert set(NAMED_VIDEOS) == {
            "softball", "figure_skating", "ice_hockey", "drone", "southbeach"
        }

    def test_make_named_video(self):
        video = make_named_video("softball", height=32, width=48)
        assert video.config.name == "softball"
        assert video.config.camera is CameraModel.FIXED

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_named_video("nonexistent")

    def test_difficulty_ordering_knobs(self):
        # southbeach (hardest) must churn more than softball (easiest).
        sb, so = NAMED_VIDEOS["southbeach"], NAMED_VIDEOS["softball"]
        assert sb.num_objects > so.num_objects
        assert sb.speed > so.speed
        assert sb.texture_drift > so.texture_drift


class TestResampleFPS:
    def test_dynamics_scaled(self):
        video = make_category_video(LVS_CATEGORIES[0], height=32, width=48)
        low = resample_fps(video, 7.0)
        ratio = video.config.fps / 7.0
        assert low.config.speed == pytest.approx(video.config.speed * ratio)
        assert low.config.texture_drift == pytest.approx(
            video.config.texture_drift * ratio
        )
        assert low.config.fps == 7.0

    def test_upsampling_rejected(self):
        video = make_category_video(LVS_CATEGORIES[0])
        with pytest.raises(ValueError):
            resample_fps(video, 60.0)

    def test_shot_length_rescaled(self):
        video = make_category_video(LVS_CATEGORIES[2], height=32, width=48)
        assert video.config.shot_length > 0
        low = resample_fps(video, 7.0)
        assert 0 < low.config.shot_length < video.config.shot_length

    def test_resampled_video_less_coherent(self):
        # Frame-to-frame change must grow after resampling — the paper's
        # section 6.5 stressor.
        video = make_category_video(LVS_CATEGORIES[0], height=32, width=48)
        low = resample_fps(video, 7.0)
        f_hi = [f.copy() for f, _ in video.frames(10)]
        f_lo = [f.copy() for f, _ in low.frames(10)]
        d_hi = np.mean([np.abs(f_hi[i + 1] - f_hi[i]).mean() for i in range(9)])
        d_lo = np.mean([np.abs(f_lo[i + 1] - f_lo[i]).mean() for i in range(9)])
        assert d_lo > d_hi
