"""Tests for the pre-training recipes ("public education")."""

import numpy as np
import pytest

from repro.models.pretrain import PretrainResult, generic_corpus, pretrain_student
from repro.models.student import StudentNet
from repro.models.teacher import TeacherNet


class TestGenericCorpus:
    def test_yields_frame_label_pairs(self):
        corpus = generic_corpus(height=32, width=48, seed=1)
        frame, label = next(corpus)
        assert frame.shape == (3, 32, 48)
        assert label.shape == (32, 48)

    def test_deterministic_given_seed(self):
        a = generic_corpus(height=32, width=48, seed=7)
        b = generic_corpus(height=32, width=48, seed=7)
        for _ in range(6):
            fa, la = next(a)
            fb, lb = next(b)
            np.testing.assert_array_equal(fa, fb)
            np.testing.assert_array_equal(la, lb)

    def test_covers_multiple_classes(self):
        corpus = generic_corpus(height=32, width=48, seed=2)
        seen = set()
        for _ in range(40):
            _, label = next(corpus)
            seen |= set(np.unique(label))
        assert len(seen) >= 4  # background + several object classes

    def test_scene_changes_between_bursts(self):
        corpus = generic_corpus(height=32, width=48, seed=3)
        frames = [next(corpus)[0] for _ in range(8)]
        # Within a 4-frame burst: coherent; across bursts: scene cut.
        within = np.abs(frames[1] - frames[0]).mean()
        across = np.abs(frames[4] - frames[3]).mean()
        assert across > within


class TestPretrainStudent:
    def test_loss_decreases(self):
        student = StudentNet(width=0.25, seed=0)
        result = pretrain_student(student, steps=30, height=32, width=48)
        assert isinstance(result, PretrainResult)
        assert result.steps == 30
        first = np.mean(result.loss_history[:5])
        last = np.mean(result.loss_history[-5:])
        assert last < first

    def test_reports_final_miou(self):
        student = StudentNet(width=0.25, seed=0)
        result = pretrain_student(student, steps=10, height=32, width=48)
        assert 0.0 <= result.final_miou <= 1.0

    def test_zero_steps_no_training(self):
        student = StudentNet(width=0.25, seed=0)
        before = {k: v.copy() for k, v in student.state_dict().items()}
        result = pretrain_student(student, steps=0, height=32, width=48)
        assert np.isnan(result.final_loss)
        after = student.state_dict()
        for k in before:
            if "running" not in k:  # eval of mIoU does not touch weights
                np.testing.assert_array_equal(before[k], after[k])

    def test_works_on_teacher_too(self):
        teacher = TeacherNet(width=8, seed=0)
        result = pretrain_student(teacher, steps=5, height=32, width=48)
        assert result.steps == 5
