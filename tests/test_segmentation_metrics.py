"""Tests for IoU / mIoU (paper Eq. 1), including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.segmentation.metrics import (
    RunningMeanIoU,
    confusion_matrix,
    iou_per_class,
    mean_iou,
    pixel_accuracy,
)


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self, rng):
        label = rng.integers(0, 4, size=(8, 8))
        cm = confusion_matrix(label, label, num_classes=4)
        assert cm.sum() == 64
        assert np.all(cm == np.diag(np.diag(cm)))

    def test_entry_semantics(self):
        label = np.array([0, 0, 1])
        pred = np.array([0, 1, 1])
        cm = confusion_matrix(pred, label, num_classes=2)
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 1 and cm[1, 0] == 0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4))


class TestIoU:
    def test_perfect_iou_is_one(self, rng):
        label = rng.integers(0, 3, size=(6, 6))
        ious = iou_per_class(label, label, num_classes=3)
        assert all(v == pytest.approx(1.0) for v in ious.values())

    def test_only_present_classes_scored(self):
        label = np.zeros((4, 4), dtype=np.int64)  # only background
        pred = np.zeros((4, 4), dtype=np.int64)
        pred[0, 0] = 3  # false positive for class 3
        ious = iou_per_class(pred, label, num_classes=4)
        assert set(ious) == {0}  # class 3 absent from label -> not scored

    def test_known_overlap_value(self):
        # pred covers 2x4, label covers 4x2, overlap 2x2 -> IoU = 4/12.
        label = np.zeros((4, 4), dtype=np.int64)
        label[:, :2] = 1
        pred = np.zeros((4, 4), dtype=np.int64)
        pred[:2, :] = 1
        iou = iou_per_class(pred, label, num_classes=2)[1]
        assert iou == pytest.approx(4 / 12)

    def test_eq1_definition(self, rng):
        # Cross-check against a direct set-based computation of Eq. 1.
        label = rng.integers(0, 3, size=(10, 10))
        pred = rng.integers(0, 3, size=(10, 10))
        ious = iou_per_class(pred, label, num_classes=3)
        for c, value in ious.items():
            inter = np.sum((pred == c) & (label == c))
            union = np.sum((pred == c) | (label == c))
            assert value == pytest.approx(inter / union)

    def test_missed_class_iou_zero(self):
        label = np.ones((4, 4), dtype=np.int64)
        pred = np.zeros((4, 4), dtype=np.int64)
        assert iou_per_class(pred, label, num_classes=2)[1] == 0.0


class TestMeanIoU:
    def test_range(self, rng):
        pred = rng.integers(0, 9, size=(8, 8))
        label = rng.integers(0, 9, size=(8, 8))
        assert 0.0 <= mean_iou(pred, label) <= 1.0

    def test_perfect_is_one(self, rng):
        label = rng.integers(0, 9, size=(8, 8))
        assert mean_iou(label, label) == pytest.approx(1.0)

    def test_mean_over_present_classes(self):
        # Background perfect, class 1 half-covered: mean of {1.0, 1/3}.
        label = np.zeros((4, 4), dtype=np.int64)
        label[:2, :] = 1
        pred = np.zeros((4, 4), dtype=np.int64)
        pred[0, :] = 1
        # bg: inter 8, union 12 -> 2/3 ; cls1: inter 4, union 8+4-4... compute:
        bg = np.sum((pred == 0) & (label == 0)) / np.sum((pred == 0) | (label == 0))
        c1 = np.sum((pred == 1) & (label == 1)) / np.sum((pred == 1) | (label == 1))
        assert mean_iou(pred, label) == pytest.approx((bg + c1) / 2)

    @given(
        seed=st.integers(0, 10_000),
        num_classes=st.integers(2, 9),
    )
    @settings(max_examples=30, deadline=None)
    def test_bounded_property(self, seed, num_classes):
        rng = np.random.default_rng(seed)
        pred = rng.integers(0, num_classes, size=(6, 6))
        label = rng.integers(0, num_classes, size=(6, 6))
        m = mean_iou(pred, label, num_classes=num_classes)
        assert 0.0 <= m <= 1.0

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_permutation_invariance(self, seed):
        # mIoU must not depend on pixel ordering.
        rng = np.random.default_rng(seed)
        pred = rng.integers(0, 4, size=36)
        label = rng.integers(0, 4, size=36)
        perm = rng.permutation(36)
        a = mean_iou(pred.reshape(6, 6), label.reshape(6, 6), num_classes=4)
        b = mean_iou(pred[perm].reshape(6, 6), label[perm].reshape(6, 6), num_classes=4)
        assert a == pytest.approx(b)


class TestRunningMeanIoU:
    def test_averages_per_frame(self, rng):
        tracker = RunningMeanIoU(num_classes=3)
        values = []
        for _ in range(5):
            pred = rng.integers(0, 3, size=(6, 6))
            label = rng.integers(0, 3, size=(6, 6))
            values.append(tracker.update(pred, label))
        assert tracker.value == pytest.approx(np.mean(values))

    def test_empty_tracker_zero(self):
        assert RunningMeanIoU().value == 0.0


class TestPixelAccuracy:
    def test_perfect(self, rng):
        label = rng.integers(0, 5, size=(4, 4))
        assert pixel_accuracy(label, label) == 1.0

    def test_fraction(self):
        pred = np.array([0, 0, 1, 1])
        label = np.array([0, 1, 1, 0])
        assert pixel_accuracy(pred, label) == 0.5
