"""Unit tests for the overload-control primitives (ISSUE 6).

:class:`TokenBucket` and :class:`LoadTracker` are pure deterministic
functions of the tick / sweep traces they are fed, so everything here
runs without a server process.  The load-bearing properties:

* determinism — identical traces give identical decisions;
* tokens never go negative, refusals spend nothing;
* retry hints are always >= 1 and honest (waiting them out admits);
* the load level and both degradation maps are *monotone* in a
  pointwise-heavier trace — more load can shrink serve budgets and
  stretch strides, never the reverse;
* at ``metric_floor`` the Algorithm-2 stride ratio is exactly
  ``1 + level/max_level`` (the stride-escalation identity the server's
  graduated degradation is built on);
* seeded storm plans are reproducible across calls and distinct
  across seeds.
"""

import random

import pytest

from repro.serving.overload import (
    LoadTracker,
    OverloadConfig,
    OverloadController,
    TokenBucket,
    metric_floor,
    serve_budget,
)
from repro.serving.storms import STORM_NAMES, storm_plan
from repro.striding.adaptive import next_stride


class TestTokenBucket:
    def test_burst_then_refuse(self):
        bucket = TokenBucket(rate=0.5, capacity=2.0)
        assert bucket.try_take(0) is None
        assert bucket.try_take(0) is None
        hint = bucket.try_take(0)
        assert hint is not None and hint >= 1

    def test_refill_admits_again(self):
        bucket = TokenBucket(rate=0.5, capacity=1.0)
        assert bucket.try_take(0) is None
        hint = bucket.try_take(0)
        assert hint == 2  # ceil(1 / 0.5) ticks to a whole token
        assert bucket.try_take(2) is None

    def test_hint_is_honest(self):
        # Waiting out the hint always yields an admission, for any
        # drained state the bucket can reach.
        rng = random.Random(1234)
        bucket = TokenBucket(rate=0.3, capacity=4.0)
        now = 0
        for _ in range(500):
            now += rng.choice((0, 0, 1, 3))
            hint = bucket.try_take(now)
            if hint is not None:
                assert hint >= 1
                assert bucket.try_take(now + hint) is None
                now += hint

    def test_tokens_never_negative(self):
        rng = random.Random(99)
        bucket = TokenBucket(rate=0.05, capacity=3.0)
        now = 0
        for _ in range(2000):
            now += rng.choice((0, 0, 0, 1, 2))
            bucket.try_take(now)
            assert 0.0 <= bucket.tokens <= bucket.capacity

    def test_refusal_spends_nothing(self):
        bucket = TokenBucket(rate=0.25, capacity=1.0)
        assert bucket.try_take(0) is None
        before = bucket.tokens
        assert bucket.try_take(0) is not None
        assert bucket.tokens == before

    def test_deterministic_on_identical_traces(self):
        rng = random.Random(7)
        trace = []
        now = 0
        for _ in range(300):
            now += rng.choice((0, 1, 1, 4))
            trace.append(now)
        runs = []
        for _ in range(2):
            bucket = TokenBucket(rate=0.2, capacity=2.5)
            runs.append([bucket.try_take(t) for t in trace])
        assert runs[0] == runs[1]

    def test_capacity_caps_refill(self):
        bucket = TokenBucket(rate=1.0, capacity=2.0)
        bucket.try_take(0)
        bucket.try_take(1000)  # long idle gap refills to capacity, no more
        assert bucket.tokens == pytest.approx(1.0)  # 2.0 cap - 1 spent

    def test_backwards_clock_raises(self):
        bucket = TokenBucket(rate=1.0, capacity=1.0)
        bucket.try_take(5)
        with pytest.raises(ValueError, match="backwards"):
            bucket.try_take(4)

    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0, "capacity": 1.0},
        {"rate": -1.0, "capacity": 1.0},
        {"rate": 1.0, "capacity": 0.5},
        {"rate": 1.0, "capacity": 2.0, "initial": -0.5},
        {"rate": 1.0, "capacity": 2.0, "initial": 3.0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            TokenBucket(**kwargs)


class TestLoadTracker:
    def test_idle_stays_level_zero(self):
        tracker = LoadTracker(high_water=2.0)
        for _ in range(100):
            assert tracker.observe(0) == 0
        assert tracker.level == 0 and tracker.peak_level == 0

    def test_sustained_load_escalates_and_decays(self):
        tracker = LoadTracker(high_water=2.0, alpha=0.2, max_level=4)
        for _ in range(200):
            tracker.observe(20)
        assert tracker.level == 4
        assert tracker.peak_level == 4
        for _ in range(200):
            tracker.observe(0)
        assert tracker.level == 0
        assert tracker.peak_level == 4  # peak is a high-water mark

    def test_level_clamped_to_max(self):
        tracker = LoadTracker(high_water=0.5, alpha=1.0, max_level=3)
        tracker.observe(10_000)
        assert tracker.level == 3

    def test_deterministic_on_identical_traces(self):
        rng = random.Random(11)
        trace = [rng.randrange(0, 12) for _ in range(400)]
        ewmas = []
        for _ in range(2):
            tracker = LoadTracker(high_water=2.0, alpha=0.1)
            levels = [tracker.observe(n) for n in trace]
            ewmas.append((levels, tracker.ewma))
        assert ewmas[0] == ewmas[1]

    def test_level_monotone_in_pointwise_heavier_trace(self):
        # A trace that is >= another trace at every sweep can never
        # produce a lower level at any sweep — the guarantee that makes
        # "more load => longer strides" an actual escalation.
        rng = random.Random(42)
        light = [rng.randrange(0, 8) for _ in range(300)]
        heavy = [n + rng.randrange(0, 5) for n in light]
        a = LoadTracker(high_water=1.5, alpha=0.1)
        b = LoadTracker(high_water=1.5, alpha=0.1)
        for lo, hi in zip(light, heavy):
            assert b.observe(hi) >= a.observe(lo)

    def test_negative_pending_raises(self):
        with pytest.raises(ValueError):
            LoadTracker(high_water=1.0).observe(-1)

    @pytest.mark.parametrize("kwargs", [
        {"high_water": 0.0},
        {"high_water": -1.0},
        {"high_water": 1.0, "alpha": 0.0},
        {"high_water": 1.0, "alpha": 1.5},
        {"high_water": 1.0, "max_level": 0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ValueError):
            LoadTracker(**kwargs)


class TestDegradationMaps:
    def test_serve_budget_monotone_and_bounded(self):
        for max_updates in (1, 4, 16, 100):
            budgets = [serve_budget(max_updates, lvl) for lvl in range(8)]
            assert budgets[0] == max_updates
            assert all(b >= 1 for b in budgets)
            assert budgets == sorted(budgets, reverse=True)

    def test_metric_floor_monotone_in_level(self):
        floors = [metric_floor(0.7, lvl, 4) for lvl in range(5)]
        assert floors[0] == 0.0
        assert floors == sorted(floors)
        assert floors[-1] == pytest.approx(1.0)

    def test_metric_floor_stride_ratio_identity(self):
        # At the floored metric, Algorithm 2's ratio is exactly
        # 1 + level/max_level: level 0 leaves strides alone, full level
        # doubles them every key frame.
        threshold, max_level = 0.7, 4
        for level in range(1, max_level + 1):
            floor = metric_floor(threshold, level, max_level)
            stride = next_stride(4.0, floor, threshold,
                                 min_stride=1, max_stride=1000)
            assert stride / 4.0 == pytest.approx(1.0 + level / max_level)

    def test_stride_escalation_monotone_in_load(self):
        # End-to-end monotonicity: heavier load -> higher level ->
        # higher floored metric -> longer next stride (until clamp).
        threshold = 0.7
        strides = [
            next_stride(4.0, metric_floor(threshold, lvl, 4), threshold,
                        min_stride=1, max_stride=1000)
            for lvl in range(1, 5)
        ]
        assert strides == sorted(strides)
        assert len(set(strides)) == len(strides)


class TestOverloadController:
    def test_defaults_are_inert(self):
        ctl = OverloadController(OverloadConfig())
        assert ctl.admit() is None  # no bucket configured
        assert ctl.degraded_budget(4) is None
        assert ctl.degraded_metric(0.31, 0.7) == 0.31
        for _ in range(50):
            ctl.observe_sweep(100)
        # Load tracking runs, but without degrade=True it changes nothing.
        assert ctl.level > 0
        assert ctl.degraded_budget(4) is None
        assert ctl.degraded_metric(0.31, 0.7) == 0.31

    def test_admission_bucket_refuses_and_counts(self):
        ctl = OverloadController(
            OverloadConfig(admission_rate=0.5, admission_burst=2.0)
        )
        assert ctl.admit() is None
        assert ctl.admit() is None
        hint = ctl.admit()
        assert hint is not None and hint >= 1
        assert ctl.refusals["overloaded"] == 1
        # Served messages advance the tick clock and refill the bucket.
        for _ in range(hint):
            ctl.served()
        assert ctl.admit() is None

    def test_capacity_hint_counts(self):
        ctl = OverloadController(OverloadConfig(capacity_retry_after=17))
        assert ctl.capacity_hint() == 17
        assert ctl.refusals["capacity"] == 1

    def test_degrade_floors_metric_and_caps_budget(self):
        ctl = OverloadController(
            OverloadConfig(degrade=True, high_water=1.0,
                           ewma_alpha=1.0, max_level=4)
        )
        assert ctl.degraded_budget(8) is None  # level 0: pristine
        ctl.observe_sweep(2)  # alpha=1.0 -> ewma jumps straight to 2
        assert ctl.level == 2
        assert ctl.degraded_budget(8) == serve_budget(8, 2)
        floored = ctl.degraded_metric(0.2, 0.7)
        assert floored == pytest.approx(metric_floor(0.7, 2, 4))
        # A metric already above the floor passes through untouched.
        assert ctl.degraded_metric(0.999, 0.7) == 0.999

    def test_config_validation(self):
        for kwargs in (
            {"admission_rate": 0.0},
            {"admission_rate": -2.0},
            {"capacity_retry_after": 0},
            {"recv_budget_s": 0.0},
            {"reap_idle_s": -1.0},
        ):
            with pytest.raises(ValueError):
                OverloadConfig(**kwargs)


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestTickCalibration:
    """The retry_after unit fix: ticks are *produced* by the bucket but
    *consumed* as wall-clock backoff, so the controller measures
    seconds-per-tick and converts at REJECT-encode time."""

    def test_tick_s_converges_to_the_serve_gap(self):
        clock = FakeClock()
        ctl = OverloadController(OverloadConfig(), clock=clock)
        assert ctl.tick_s is None  # nothing measured yet
        for _ in range(60):
            ctl.served()
            clock.advance(0.02)
        assert ctl.tick_s == pytest.approx(0.02, rel=1e-6)

    def test_idle_stretch_is_clamped_not_poisonous(self):
        clock = FakeClock()
        ctl = OverloadController(OverloadConfig(), clock=clock)
        ctl.served()
        clock.advance(0.01)
        ctl.served()
        assert ctl.tick_s == pytest.approx(0.01)
        clock.advance(3600.0)  # one quiet hour
        ctl.served()
        # The gap enters as the 1 s clamp, not 3600 s.
        assert ctl.tick_s <= 0.01 + OverloadController.TICK_EWMA_ALPHA * 1.0

    def test_backwards_clock_gap_is_ignored(self):
        clock = FakeClock()
        ctl = OverloadController(OverloadConfig(), clock=clock)
        ctl.served()
        clock.advance(0.01)
        ctl.served()
        before = ctl.tick_s
        clock.advance(-5.0)
        ctl.served()
        assert ctl.tick_s == before

    def test_ticks_to_ms_uses_fallback_then_measurement(self):
        clock = FakeClock()
        ctl = OverloadController(OverloadConfig(), clock=clock)
        nominal = OverloadController.FALLBACK_TICK_S
        assert ctl.ticks_to_ms(64) == round(64 * nominal * 1000)
        assert ctl.ticks_to_ms(0) == 1  # a REJECT hint is never zero
        for _ in range(80):
            ctl.served()
            clock.advance(0.1)
        assert ctl.ticks_to_ms(10) == pytest.approx(1000, abs=5)

    def test_hint_is_honest_in_wall_clock(self):
        """Sleep the advertised milliseconds while the server keeps
        serving at its measured rate and the re-ADMIT must succeed:
        hint_ms / (ms per tick) ticks elapse during the sleep, which is
        exactly the tick-denominated refill the bucket asked for."""
        dt = 0.02
        clock = FakeClock()
        ctl = OverloadController(
            OverloadConfig(admission_rate=0.25, admission_burst=2.0),
            clock=clock,
        )
        # Calibrate: serve steadily at dt seconds per message.
        for _ in range(100):
            ctl.served()
            clock.advance(dt)
        # Drain the burst, then get refused with a hint.
        while ctl.admit() is None:
            pass
        hint_ticks = ctl.bucket.try_take(ctl.tick)
        hint_ms = ctl.ticks_to_ms(hint_ticks)
        # A client sleeping hint_ms while the server serves one message
        # every dt seconds sees this many ticks pass:
        for _ in range(round(hint_ms / 1000.0 / dt)):
            ctl.served()
            clock.advance(dt)
        assert ctl.admit() is None


class TestStormPlans:
    @pytest.mark.parametrize("name", STORM_NAMES)
    def test_plans_deterministic_per_seed(self, name):
        assert storm_plan(name, seed=7) == storm_plan(name, seed=7)
        assert storm_plan(name, seed=7) != storm_plan(name, seed=8)

    @pytest.mark.parametrize("name", STORM_NAMES)
    def test_plans_are_well_formed(self, name):
        plan = storm_plan(name, seed=0, frames=3)
        assert plan.name == name
        assert plan.jobs  # every storm carries honest traffic
        assert plan.n_clients == (
            len(plan.jobs) + len(plan.loris_slots) + len(plan.ghost_slots)
        )
        for delay, config, hw, video_key, num_frames, label in plan.jobs:
            assert delay >= 0.0
            assert num_frames >= 1
            assert label

    def test_unknown_storm_raises(self):
        with pytest.raises(KeyError):
            storm_plan("category-5-hurricane")
