"""Tests for the compiled inference engine (plan compiler + kernels)."""

import numpy as np
import pytest

from repro import engine
from repro.autograd.tensor import Tensor, no_grad
from repro.engine.compiler import CompiledPlan, compile_plan
from repro.engine.kernels import UntraceableError
from repro.models.student import StudentNet
from repro.nn.serialize import apply_state_dict, state_dict_diff


def autograd_logits(student, x):
    with engine.disabled(), no_grad():
        return student.forward(Tensor(x)).data


class TestForwardEquivalence:
    @pytest.mark.parametrize("width", [0.5, 1.0])
    @pytest.mark.parametrize("batch", [None, 2])
    def test_matches_autograd(self, rng, width, batch):
        student = StudentNet(width=width, seed=3)
        student.eval()
        n = 1 if batch is None else batch
        x = rng.normal(size=(n, 3, 32, 48)).astype(np.float32)
        ref = autograd_logits(student, x)
        plan = student.engine_plan("forward", (x.shape,))
        assert plan is not None
        (got,) = plan.run(x)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    @pytest.mark.parametrize("hw", [(20, 28), (64, 96), (16, 16), (32, 44)])
    def test_odd_geometries(self, rng, hw):
        student = StudentNet(width=0.5, seed=7)
        student.eval()
        x = rng.normal(size=(1, 3) + hw).astype(np.float32)
        ref = autograd_logits(student, x)
        (got,) = student.engine_plan("forward", (x.shape,)).run(x)
        np.testing.assert_allclose(got, ref, atol=1e-5)

    def test_single_frame_is_bit_identical(self, rng):
        # The hot path (one frame) must not drift at all: the benchmark
        # asserts argmax equality against the autograd path per frame.
        student = StudentNet(width=0.5, seed=11)
        student.eval()
        x = rng.normal(size=(1, 3, 64, 96)).astype(np.float32)
        ref = autograd_logits(student, x)
        (got,) = student.engine_plan("forward", (x.shape,)).run(x)
        np.testing.assert_array_equal(got, ref)

    def test_predict_routes_through_engine_and_matches(self, rng):
        student = StudentNet(width=0.5, seed=5)
        student.eval()
        frame = rng.normal(size=(3, 32, 48)).astype(np.float32)
        with engine.disabled():
            ref = student.predict(frame)
        got = student.predict(frame)
        np.testing.assert_array_equal(ref, got)
        # The plan must now be cached for the frame geometry.
        assert student.engine_plan("forward", ((1, 3, 32, 48),)) is not None

    def test_front_back_split_composes_to_forward(self, rng):
        student = StudentNet(width=0.5, seed=5)
        student.eval()
        x = rng.normal(size=(1, 3, 32, 48)).astype(np.float32)
        front = student.engine_plan("front", (x.shape,))
        feats = front.run(x)
        feats = tuple(np.array(f, copy=True) for f in feats)
        back = student.engine_plan("back", tuple(f.shape for f in feats))
        (got,) = back.run(*feats)
        np.testing.assert_allclose(got, autograd_logits(student, x), atol=1e-5)


class TestPlanMechanics:
    def test_disabled_engine_returns_no_plan(self, rng):
        student = StudentNet(width=0.25, seed=0)
        with engine.disabled():
            assert student.engine_plan("forward", ((1, 3, 16, 16),)) is None

    def test_run_validates_shapes(self, rng):
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        plan = student.engine_plan("forward", ((1, 3, 16, 16),))
        with pytest.raises(ValueError):
            plan.run(np.zeros((1, 3, 32, 32), np.float32))
        with pytest.raises(ValueError):
            plan.run()

    def test_untraceable_callable_raises(self):
        def fn(x):
            return x.sigmoid()  # no kernel / no hook for sigmoid

        with pytest.raises(UntraceableError):
            compile_plan(fn, (np.zeros((1, 2, 4, 4), np.float32),))

    def test_failed_compiles_are_cached_as_none(self, monkeypatch, rng):
        student = StudentNet(width=0.25, seed=0)
        student.eval()

        calls = []
        import repro.engine.compiler as compiler_mod

        original = compiler_mod.compile_plan

        def counting(fn, examples):
            calls.append(1)
            raise UntraceableError("forced")

        monkeypatch.setattr(compiler_mod, "compile_plan", counting)
        assert student.engine_plan("forward", ((1, 3, 16, 16),)) is None
        assert student.engine_plan("forward", ((1, 3, 16, 16),)) is None
        assert len(calls) == 1  # the trace is not retried per frame
        monkeypatch.setattr(compiler_mod, "compile_plan", original)

    def test_plan_buffers_reused_between_runs(self, rng):
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        plan = student.engine_plan("forward", ((1, 3, 16, 16),))
        a = plan.run(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))[0]
        first = a.copy()
        b = plan.run(rng.normal(size=(1, 3, 16, 16)).astype(np.float32))[0]
        assert a is b  # same scratch buffer: callers copy if they keep it
        assert not np.array_equal(first, b)


class TestInvalidation:
    """apply_state_dict / load_state_dict must never leave stale plans."""

    def test_engine_fresh_after_apply_state_dict(self, rng):
        student = StudentNet(width=0.5, seed=1)
        donor = StudentNet(width=0.5, seed=99)
        student.eval()
        donor.eval()
        x = rng.normal(size=(1, 3, 32, 48)).astype(np.float32)
        plan = student.engine_plan("forward", (x.shape,))
        before = plan.run(x)[0].copy()

        update = state_dict_diff(donor, trainable_only=False)
        apply_state_dict(student, update)

        plan_after = student.engine_plan("forward", (x.shape,))
        got = plan_after.run(x)[0]
        ref = autograd_logits(student, x)
        np.testing.assert_array_equal(got, ref)
        assert not np.allclose(before, got)  # genuinely new weights

    def test_engine_fresh_after_load_state_dict(self, rng):
        student = StudentNet(width=0.5, seed=1)
        donor = StudentNet(width=0.5, seed=42)
        student.eval()
        x = rng.normal(size=(1, 3, 32, 48)).astype(np.float32)
        student.engine_plan("forward", (x.shape,)).run(x)
        student.load_state_dict(donor.state_dict())
        got = student.engine_plan("forward", (x.shape,)).run(x)[0]
        np.testing.assert_array_equal(got, autograd_logits(student, x))

    def test_engine_fresh_after_inplace_optimizer_update(self, rng):
        # Adam mutates parameter arrays in place between metric predicts.
        student = StudentNet(width=0.5, seed=1)
        student.eval()
        x = rng.normal(size=(1, 3, 32, 48)).astype(np.float32)
        plan = student.engine_plan("forward", (x.shape,))
        plan.run(x)
        for p in student.parameters():
            p.data -= 0.05 * rng.normal(size=p.data.shape).astype(np.float32)
        np.testing.assert_array_equal(plan.run(x)[0], autograd_logits(student, x))

    def test_weight_static_plans_are_dropped_on_apply(self):
        student = StudentNet(width=0.25, seed=0)

        class DummyStatic:
            weight_static = True

        class DummyDynamic:
            weight_static = False

        student._engine_plans[("static", ())] = DummyStatic()
        dynamic = DummyDynamic()
        student._engine_plans[("dynamic", ())] = dynamic
        apply_state_dict(student, {})
        assert ("static", ()) not in student._engine_plans
        # Weight-dynamic plans survive routine updates (no recompiles in
        # the steady-state loop).
        assert student._engine_plans[("dynamic", ())] is dynamic

    def test_full_invalidation_clears_cache(self):
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        student.engine_plan("forward", ((1, 3, 16, 16),))
        assert student._engine_plans
        student.invalidate_plans()
        assert not student._engine_plans


class TestCompiledPlanDirect:
    def test_compile_plan_on_plain_callable(self, rng):
        student = StudentNet(width=0.25, seed=0)
        student.eval()
        x = rng.normal(size=(2, 3, 16, 16)).astype(np.float32)
        plan = compile_plan(student.forward, (x,))
        assert isinstance(plan, CompiledPlan)
        assert plan.weight_static is False
        np.testing.assert_allclose(plan.run(x)[0], autograd_logits(student, x), atol=1e-5)
