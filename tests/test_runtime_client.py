"""Tests for the client (Algorithm 4): key-frame scheduling, async
update application, waiting behaviour and stats consistency."""

import numpy as np
import pytest

from repro.distill.config import DistillConfig, DistillMode
from repro.models.student import StudentNet
from repro.models.teacher import OracleTeacher
from repro.network.model import NetworkModel
from repro.runtime.client import Client
from repro.runtime.clock import LatencyModel
from repro.runtime.server import Server
from repro.video.generator import SyntheticVideo, VideoConfig


def make_system(
    bandwidth=80.0,
    mode=DistillMode.PARTIAL,
    forced_delay=None,
    min_stride=4,
    max_stride=16,
    max_updates=4,
    width=0.25,
    threshold=0.8,
):
    cfg = DistillConfig(mode=mode, min_stride=min_stride,
                        max_stride=max_stride, max_updates=max_updates,
                        threshold=threshold)
    server = Server(StudentNet(width=width, seed=0), OracleTeacher(), cfg)
    client = Client(
        StudentNet(width=width, seed=0),
        server,
        cfg,
        latency=LatencyModel(),
        network=NetworkModel(bandwidth_mbps=bandwidth),
        forced_delay_frames=forced_delay,
    )
    return client


def video_frames(n, seed=0, hw=(32, 48)):
    video = SyntheticVideo(VideoConfig(seed=seed, height=hw[0], width=hw[1],
                                       num_objects=2, class_pool=(1,)))
    return list(video.frames(n))


class TestKeyFrameSchedule:
    def test_first_frame_is_key(self):
        client = make_system()
        stats = client.run(video_frames(10))
        assert stats.frames[0].is_key
        assert stats.key_frames[0].index == 0

    def test_key_frames_at_least_min_stride_apart(self):
        client = make_system(min_stride=4)
        stats = client.run(video_frames(40))
        indices = [k.index for k in stats.key_frames]
        gaps = np.diff(indices)
        assert (gaps >= 4).all()

    def test_key_frames_at_most_max_stride_apart(self):
        client = make_system(max_stride=16)
        stats = client.run(video_frames(60))
        indices = [k.index for k in stats.key_frames]
        gaps = np.diff(indices)
        assert (gaps <= 16).all()

    def test_every_frame_processed_once(self):
        client = make_system()
        stats = client.run(video_frames(25))
        assert stats.num_frames == 25
        assert [f.index for f in stats.frames] == list(range(25))

    def test_key_frame_count_consistent(self):
        client = make_system()
        stats = client.run(video_frames(30))
        assert sum(f.is_key for f in stats.frames) == stats.num_key_frames


class TestTiming:
    def test_each_frame_costs_tsi(self):
        client = make_system(bandwidth=10_000.0)  # network ~free
        stats = client.run(video_frames(12))
        # With a near-infinite link the client never blocks: total time
        # is n * t_si.
        assert stats.total_time_s == pytest.approx(12 * 0.143, rel=1e-3)

    def test_slow_network_causes_waits(self):
        fast = make_system(bandwidth=10_000.0).run(video_frames(24))
        slow = make_system(bandwidth=4.0).run(video_frames(24))
        assert slow.total_time_s > fast.total_time_s

    def test_sim_time_monotone(self):
        client = make_system(bandwidth=8.0)
        stats = client.run(video_frames(20))
        times = [f.sim_time for f in stats.frames]
        assert all(b >= a for a, b in zip(times, times[1:]))


class TestUpdateApplication:
    def test_update_applied_within_min_stride(self):
        client = make_system(bandwidth=80.0, min_stride=4)
        stats = client.run(video_frames(30))
        delays = [f.update_delay for f in stats.frames if f.update_delay]
        assert delays, "no updates were applied"
        assert max(delays) <= 4

    def test_forced_delay_pins_application(self):
        client = make_system(forced_delay=2, min_stride=4)
        stats = client.run(video_frames(30))
        delays = [f.update_delay for f in stats.frames if f.update_delay]
        assert delays and all(d == 2 for d in delays)

    def test_client_student_tracks_server(self):
        client = make_system(forced_delay=1)
        frames = video_frames(20)
        client.run(frames)
        # After the run the client holds the server's latest trainable
        # weights (the last update was applied).
        server_w = client.server.student.sb5.conv1x1.weight.data
        client_w = client.student.sb5.conv1x1.weight.data
        np.testing.assert_allclose(client_w, server_w)

    def test_stride_follows_server_metric(self):
        # A reachable threshold for the small untrained test student:
        # once the metric exceeds it the stride must grow past MIN_STRIDE.
        client = make_system(forced_delay=1, min_stride=4, max_stride=16,
                             threshold=0.3, max_updates=8)
        stats = client.run(video_frames(60))
        assert max(f.stride for f in stats.frames) > 4


class TestTrafficAccounting:
    def test_bytes_match_keyframe_count(self):
        client = make_system()
        stats = client.run(video_frames(30))
        sizes = client.sizes
        expected_up = stats.num_key_frames * sizes.frame_to_server
        assert stats.total_up_bytes == expected_up

    def test_partial_downlink_smaller_than_full(self):
        partial = make_system(mode=DistillMode.PARTIAL).run(video_frames(30))
        full = make_system(mode=DistillMode.FULL).run(video_frames(30))
        per_kf_partial = partial.total_down_bytes / partial.num_key_frames
        per_kf_full = full.total_down_bytes / full.num_key_frames
        assert per_kf_partial < per_kf_full


class TestStridePolicyIntegration:
    def test_fixed_policy_used(self):
        from repro.striding.baselines import FixedStride

        cfg = DistillConfig(min_stride=4, max_stride=16, max_updates=2)
        server = Server(StudentNet(width=0.25, seed=0), OracleTeacher(), cfg)
        client = Client(
            StudentNet(width=0.25, seed=0), server, cfg,
            stride_policy=FixedStride(cfg, stride=5),
            forced_delay_frames=1,
        )
        stats = client.run(video_frames(26))
        gaps = np.diff([k.index for k in stats.key_frames])
        assert (gaps == 5).all()
