"""Tests for .npz checkpoint save/load."""

import numpy as np
import pytest

from repro.models.student import StudentNet
from repro.nn.checkpoint import load_checkpoint, peek_metadata, save_checkpoint


class TestCheckpointRoundtrip:
    def test_roundtrip_restores_weights(self, tmp_path, rng):
        a = StudentNet(width=0.25, seed=1)
        for p in a.parameters():
            p.data += rng.normal(0, 0.1, size=p.data.shape).astype(np.float32)
        path = tmp_path / "student.npz"
        save_checkpoint(a, path)

        b = StudentNet(width=0.25, seed=2)  # different init
        load_checkpoint(b, path)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_buffers_roundtrip(self, tmp_path):
        a = StudentNet(width=0.25, seed=1)
        a.sb1.bn.set_buffer("running_mean", np.full_like(a.sb1.bn.running_mean, 3.0))
        path = tmp_path / "s.npz"
        save_checkpoint(a, path)
        b = StudentNet(width=0.25, seed=1)
        load_checkpoint(b, path)
        np.testing.assert_allclose(b.sb1.bn.running_mean, 3.0)

    def test_predictions_identical_after_load(self, tmp_path, rng):
        a = StudentNet(width=0.25, seed=1)
        path = tmp_path / "s.npz"
        save_checkpoint(a, path)
        b = StudentNet(width=0.25, seed=9)
        load_checkpoint(b, path)
        frame = rng.normal(size=(3, 16, 16)).astype(np.float32)
        a.eval(), b.eval()
        np.testing.assert_array_equal(a.predict(frame), b.predict(frame))


class TestMetadata:
    def test_metadata_roundtrip(self, tmp_path):
        student = StudentNet(width=0.25)
        path = tmp_path / "s.npz"
        save_checkpoint(student, path, metadata={"steps": 80, "corpus": "generic"})
        meta = peek_metadata(path)
        assert meta["steps"] == 80
        assert meta["corpus"] == "generic"

    def test_default_metadata_has_param_count(self, tmp_path):
        student = StudentNet(width=0.25)
        path = tmp_path / "s.npz"
        save_checkpoint(student, path)
        assert peek_metadata(path)["num_parameters"] == student.num_parameters()

    def test_load_returns_metadata(self, tmp_path):
        student = StudentNet(width=0.25)
        path = tmp_path / "s.npz"
        save_checkpoint(student, path, metadata={"tag": "v1"})
        meta = load_checkpoint(StudentNet(width=0.25), path)
        assert meta["tag"] == "v1"


class TestValidation:
    def test_width_mismatch_raises(self, tmp_path):
        save_checkpoint(StudentNet(width=0.25), tmp_path / "s.npz")
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(StudentNet(width=0.5), tmp_path / "s.npz")

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(StudentNet(width=0.25), tmp_path / "nope.npz")

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nest" / "s.npz"
        save_checkpoint(StudentNet(width=0.25), path)
        assert path.exists()
