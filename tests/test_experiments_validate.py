"""Tests for the shape-criteria validator."""

import pytest

from repro.experiments.tables import TableResult
from repro.experiments.validate import (
    Criterion,
    render_report,
    validate_table2,
    validate_table3,
    validate_table4,
    validate_table5,
    validate_table6,
)


def table2(partial_steps=3.8, full_steps=4.4):
    return TableResult(
        name="table2", paper={},
        rows={
            "partial": {"step_latency_ms": 13.0, "mean_steps": partial_steps},
            "full": {"step_latency_ms": 18.0, "mean_steps": full_steps},
        },
    )


def table3(partial=6.5, full=6.0, naive=2.1):
    rows = {
        key: {"partial_fps": partial, "full_fps": full, "naive_fps": naive}
        for key in ("fixed-people", "fixed-animals")
    }
    return TableResult(name="table3", paper={}, rows=rows)


def table4(p=3.032, f=4.483, n=3.516):
    return TableResult(
        name="table4", paper={},
        rows={
            "partial": {"total_mb": p},
            "full": {"total_mb": f},
            "naive": {"total_mb": n},
        },
    )


class TestTable2Criteria:
    def test_paper_shape_passes(self):
        assert all(c.passed for c in validate_table2(table2()))

    def test_inverted_steps_fails(self):
        checks = validate_table2(table2(partial_steps=6.0, full_steps=4.0))
        assert not all(c.passed for c in checks)


class TestTable3Criteria:
    def test_paper_shape_passes(self):
        assert all(c.passed for c in validate_table3(table3()))

    def test_weak_speedup_fails(self):
        checks = validate_table3(table3(partial=4.0, naive=2.0))
        names = {c.name: c.passed for c in checks}
        assert not names["ShadowTutor > 3x naive"]

    def test_full_faster_than_partial_fails(self):
        checks = validate_table3(table3(partial=5.0, full=6.0))
        names = {c.name: c.passed for c in checks}
        assert not names["partial >= full throughput"]


class TestTable4Criteria:
    def test_paper_values_pass(self):
        assert all(c.passed for c in validate_table4(table4()))

    def test_wrong_ordering_fails(self):
        checks = validate_table4(table4(p=5.0))
        assert not all(c.passed for c in checks)


class TestTable56Criteria:
    def _t5(self):
        rows = {
            "fixed-people": {"partial_kf_pct": 2.0, "partial_traffic_mbps": 3.0,
                             "naive_traffic_mbps": 58.0},
            "fixed-animals": {"partial_kf_pct": 5.0, "partial_traffic_mbps": 7.0,
                              "naive_traffic_mbps": 58.0},
            "fixed-street": {"partial_kf_pct": 9.0, "partial_traffic_mbps": 14.0,
                             "naive_traffic_mbps": 58.0},
            "moving-people": {"partial_kf_pct": 3.0, "partial_traffic_mbps": 5.0,
                              "naive_traffic_mbps": 58.0},
            "moving-street": {"partial_kf_pct": 11.0, "partial_traffic_mbps": 17.0,
                              "naive_traffic_mbps": 58.0},
        }
        return TableResult(name="table5", paper={}, rows=rows)

    def test_table5_paper_shape_passes(self):
        assert all(c.passed for c in validate_table5(self._t5()))

    def test_table5_relaxed_mode_drops_strict_checks(self):
        strict = validate_table5(self._t5(), strict=True)
        relaxed = validate_table5(self._t5(), strict=False)
        assert len(relaxed) < len(strict)

    def _t6(self, wild=17.0, p1=72.0, p8=71.0, f1=69.0):
        rows = {
            "fixed-people": {
                "wild_miou_pct": wild, "p1_miou_pct": p1, "p8_miou_pct": p8,
                "f1_miou_pct": f1, "naive_miou_pct": 100.0,
            }
        }
        return TableResult(name="table6", paper={}, rows=rows)

    def test_table6_paper_shape_passes(self):
        assert all(c.passed for c in validate_table6(self._t6()))

    def test_table6_catches_useless_distillation(self):
        checks = validate_table6(self._t6(p1=30.0, p8=29.0))
        assert not all(c.passed for c in checks)


class TestReport:
    def test_report_counts(self):
        report = render_report({
            "t2": [Criterion("a", True), Criterion("b", False, "why")],
        })
        assert "[PASS] a" in report
        assert "[FAIL] b  (why)" in report
        assert "1/2 passed" in report
