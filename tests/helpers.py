"""Shared numeric-gradient helpers for the test suite."""

import numpy as np


def numeric_gradient(tensor, scalar_fn, eps=1e-2):
    """Central-difference gradient of ``scalar_fn()`` w.r.t. ``tensor.data``.

    ``scalar_fn`` must recompute the forward pass from ``tensor.data``.
    float32 arithmetic limits accuracy, hence the relatively large eps.
    """
    grad = np.zeros_like(tensor.data)
    it = np.nditer(tensor.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = tensor.data[idx].copy()
        tensor.data[idx] = orig + eps
        plus = scalar_fn()
        tensor.data[idx] = orig - eps
        minus = scalar_fn()
        tensor.data[idx] = orig
        grad[idx] = (plus - minus) / (2 * eps)
    return grad


def assert_grad_close(analytic, numeric, rtol=2e-2, atol=1e-3):
    """Compare analytic and numeric gradients with float32 tolerances."""
    scale = max(np.abs(numeric).max(), 1e-6)
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol * scale + atol)
