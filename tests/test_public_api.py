"""Public-API surface tests: documented entry points import, carry
docstrings, and the package's __all__ is honest."""

import importlib
import inspect

import pytest

import repro

PUBLIC_MODULES = [
    "repro",
    "repro.autograd",
    "repro.autograd.tensor",
    "repro.autograd.conv",
    "repro.autograd.functional",
    "repro.nn",
    "repro.nn.module",
    "repro.nn.layers",
    "repro.nn.extras",
    "repro.nn.optim",
    "repro.nn.serialize",
    "repro.nn.checkpoint",
    "repro.nn.init",
    "repro.models",
    "repro.models.student",
    "repro.models.teacher",
    "repro.models.pretrain",
    "repro.segmentation",
    "repro.segmentation.metrics",
    "repro.segmentation.losses",
    "repro.segmentation.boundary",
    "repro.video",
    "repro.video.scene",
    "repro.video.render",
    "repro.video.generator",
    "repro.video.dataset",
    "repro.video.codec",
    "repro.video.preview",
    "repro.distill",
    "repro.distill.config",
    "repro.distill.trainer",
    "repro.distill.ensembles",
    "repro.striding",
    "repro.striding.adaptive",
    "repro.striding.baselines",
    "repro.network",
    "repro.network.messages",
    "repro.network.model",
    "repro.network.dynamic",
    "repro.comm",
    "repro.comm.interface",
    "repro.comm.inproc",
    "repro.comm.mp",
    "repro.transport",
    "repro.transport.wire",
    "repro.transport.shm",
    "repro.transport.link",
    "repro.transport.registry",
    "repro.transport.remote",
    "repro.runtime",
    "repro.runtime.clock",
    "repro.runtime.stats",
    "repro.runtime.server",
    "repro.runtime.client",
    "repro.runtime.naive",
    "repro.runtime.session",
    "repro.runtime.trace",
    "repro.serving",
    "repro.serving.pool",
    "repro.serving.scheduler",
    "repro.serving.batched",
    "repro.serving.shared",
    "repro.obs",
    "repro.obs.metrics",
    "repro.obs.trace",
    "repro.analytic",
    "repro.analytic.bounds",
    "repro.analytic.planner",
    "repro.analysis",
    "repro.analysis.traces",
    "repro.analysis.per_class",
    "repro.analysis.ascii_plot",
    "repro.experiments",
    "repro.experiments.configs",
    "repro.experiments.runner",
    "repro.experiments.tables",
    "repro.experiments.figures",
    "repro.experiments.validate",
    "repro.experiments.report",
    "repro.cli",
]


class TestModules:
    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_imports(self, name):
        module = importlib.import_module(name)
        assert module is not None

    @pytest.mark.parametrize("name", PUBLIC_MODULES)
    def test_module_docstring(self, name):
        module = importlib.import_module(name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20, (
            f"{name} lacks a meaningful module docstring"
        )


class TestTopLevelAll:
    def test_all_entries_exist(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__

    def test_public_callables_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
        assert not undocumented, f"missing docstrings: {undocumented}"
