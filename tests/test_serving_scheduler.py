"""Scheduler determinism: the pool's cooperative interleaving is a pure
function of its specs.  Same seed + config ⇒ identical interleaving
trace and identical BENCH-relevant counters across two runs — including
pools mixing a forced-delay session with fast sessions, late joiners,
and slow-feed (tick_interval > 1) sessions."""

import numpy as np
import pytest

from repro.distill.config import DistillConfig
from repro.runtime.session import SessionConfig
from repro.serving.pool import SessionPool, SessionSpec
from repro.serving.scheduler import TickScheduler
from repro.video.generator import SyntheticVideo, VideoConfig

HW = (32, 48)
PRETRAIN_STEPS = 16


def make_video(seed):
    return SyntheticVideo(
        VideoConfig(
            name=f"v{seed}", seed=seed, height=HW[0], width=HW[1], num_objects=2
        )
    )


def mixed_specs():
    """A forced-delay session mixed with fast sessions, one late joiner
    and one half-rate feed."""
    base = SessionConfig(student_width=0.25, pretrain_steps=PRETRAIN_STEPS)
    forced = SessionConfig(
        distill=DistillConfig(min_stride=4, max_stride=12, max_updates=2),
        student_width=0.25,
        pretrain_steps=PRETRAIN_STEPS,
        forced_delay_frames=2,
    )
    return [
        SessionSpec(video=make_video(1), num_frames=18, config=base),
        SessionSpec(video=make_video(2), num_frames=18, config=forced),
        SessionSpec(video=make_video(3), num_frames=12, config=base, start_tick=4),
        SessionSpec(video=make_video(4), num_frames=9, config=base, tick_interval=2),
    ]


class TestTickScheduler:
    def test_cohorts_pop_in_session_order(self):
        sched = TickScheduler()
        for idx in (3, 1, 2):
            sched.arm(0, idx)
        sched.arm(1, 0)
        tick, due = sched.next_due()
        assert (tick, due) == (0, [1, 2, 3])
        tick, due = sched.next_due()
        assert (tick, due) == (1, [0])
        assert not sched

    def test_ticks_always_advance_monotonically(self):
        sched = TickScheduler()
        rng = np.random.default_rng(0)
        for _ in range(50):
            sched.arm(int(rng.integers(0, 20)), int(rng.integers(0, 8)))
        last = -1
        while sched:
            tick, due = sched.next_due()
            assert tick > last
            assert due == sorted(due)
            last = tick

    def test_empty_scheduler_raises(self):
        with pytest.raises(IndexError):
            TickScheduler().next_due()


class TestPoolDeterminism:
    def test_two_runs_produce_identical_traces_and_counters(self):
        first = SessionPool(mixed_specs()).run()
        second = SessionPool(mixed_specs()).run()
        assert first.schedule == second.schedule
        assert first.counters == second.counters
        for a, b in zip(first.stats, second.stats):
            assert [(f.index, f.miou, f.sim_time) for f in a.frames] == [
                (f.index, f.miou, f.sim_time) for f in b.frames
            ]
            assert [(k.index, k.metric, k.steps) for k in a.key_frames] == [
                (k.index, k.metric, k.steps) for k in b.key_frames
            ]

    def test_schedule_covers_every_frame_exactly_once(self):
        result = SessionPool(mixed_specs()).run()
        seen = {}
        for tick, session, frame, route in result.schedule:
            assert (session, frame) not in seen
            seen[(session, frame)] = tick
        per_session = {}
        for session, frame in seen:
            per_session[session] = per_session.get(session, 0) + 1
        assert per_session == {0: 18, 1: 18, 2: 12, 3: 9}

    def test_virtual_clock_honours_start_and_interval(self):
        result = SessionPool(mixed_specs()).run()
        by_session = {}
        for tick, session, frame, _ in result.schedule:
            by_session.setdefault(session, []).append((frame, tick))
        # Late joiner: first frame at its start tick.
        assert by_session[2][0] == (0, 4)
        # Half-rate feed: frames 2 ticks apart.
        ticks = [t for _, t in by_session[3]]
        assert ticks == list(range(0, 18, 2))
        # Fast sessions: one frame per tick from tick 0.
        assert [t for _, t in by_session[0]] == list(range(18))

    def test_forced_delay_session_behaves_as_alone(self):
        """The mixed pool's forced-delay session reports exactly the
        pinned update delays it would report in a solo run."""
        result = SessionPool(mixed_specs()).run()
        forced_stats = result.stats[1]
        delays = [f.update_delay for f in forced_stats.frames if f.update_delay]
        assert delays and all(d == 2 for d in delays)

    def test_interleaving_is_stable_under_amortisation_switches(self):
        """Switching sharing/batching off changes route tags, never the
        (tick, session, frame) interleaving."""
        a = SessionPool(mixed_specs()).run()
        b = SessionPool(
            mixed_specs(),
            batch_predicts=False,
            share_server_work=False,
            dedup_identical_frames=False,
        ).run()
        assert [(t, s, f) for t, s, f, _ in a.schedule] == [
            (t, s, f) for t, s, f, _ in b.schedule
        ]
