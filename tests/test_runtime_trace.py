"""Tests for the event-trace subsystem and its client integration."""

import json

import numpy as np
import pytest

from repro.distill.config import DistillConfig
from repro.models.student import StudentNet
from repro.models.teacher import OracleTeacher
from repro.network.model import NetworkModel
from repro.runtime.client import Client
from repro.runtime.server import Server
from repro.runtime.trace import Event, EventType, NullTrace, Trace
from repro.video.generator import SyntheticVideo, VideoConfig


class TestTraceBasics:
    def test_emit_and_query(self):
        trace = Trace()
        trace.emit(EventType.FRAME, 0.1, 0)
        trace.emit(EventType.WAIT, 0.2, 1, duration=0.5)
        assert len(trace) == 2
        assert len(trace.of_type(EventType.WAIT)) == 1
        assert trace.total_wait_time() == pytest.approx(0.5)

    def test_null_trace_ignores_emit(self):
        trace = NullTrace()
        trace.emit(EventType.FRAME, 0.0, 0)
        assert len(trace) == 0

    def test_json_roundtrip(self, tmp_path):
        trace = Trace()
        trace.emit(EventType.KEY_DISPATCH, 1.0, 8, steps=4.0, metric=0.9)
        trace.emit(EventType.UPDATE_APPLY, 1.5, 8, key_index=8.0, metric=0.9,
                   delay_frames=2.0)
        path = tmp_path / "trace.json"
        trace.to_json(path)
        loaded = Trace.from_json(path.read_text())
        assert len(loaded) == 2
        assert loaded.events[0].type is EventType.KEY_DISPATCH
        assert loaded.events[1].detail["delay_frames"] == 2.0

    def test_json_is_valid(self):
        trace = Trace()
        trace.emit(EventType.FRAME, 0.0, 0)
        parsed = json.loads(trace.to_json())
        assert parsed[0]["type"] == "frame"

    def test_dispatch_to_apply_latency(self):
        trace = Trace()
        trace.emit(EventType.KEY_DISPATCH, 1.0, 8)
        trace.emit(EventType.UPDATE_APPLY, 1.4, 8, key_index=8.0)
        latencies = trace.dispatch_to_apply_latencies()
        assert latencies == [pytest.approx(0.4)]

    def test_events_are_frozen(self):
        event = Event(EventType.FRAME, 0.0, 0)
        with pytest.raises(Exception):
            event.sim_time = 1.0


class TestClientIntegration:
    def _run(self, bandwidth=80.0, frames=40):
        cfg = DistillConfig(min_stride=4, max_stride=16, max_updates=2)
        trace = Trace()
        server = Server(StudentNet(width=0.25, seed=0), OracleTeacher(), cfg)
        client = Client(
            StudentNet(width=0.25, seed=0), server, cfg,
            network=NetworkModel(bandwidth_mbps=bandwidth), trace=trace,
        )
        video = SyntheticVideo(VideoConfig(seed=1, height=32, width=48,
                                           num_objects=2, class_pool=(1,)))
        stats = client.run(video.frames(frames))
        return stats, trace

    def test_dispatch_events_match_key_frames(self):
        stats, trace = self._run()
        assert len(trace.of_type(EventType.KEY_DISPATCH)) == stats.num_key_frames

    def test_apply_events_for_applied_updates(self):
        stats, trace = self._run()
        applied = [f for f in stats.frames if f.update_delay is not None]
        assert len(trace.of_type(EventType.UPDATE_APPLY)) >= len(applied)

    def test_wait_events_sum_to_wait_time(self):
        stats, trace = self._run(bandwidth=2.0)  # force blocking
        assert stats.wait_time_s > 0
        assert trace.total_wait_time() == pytest.approx(stats.wait_time_s, rel=0.2)

    def test_no_wait_events_on_fast_link(self):
        stats, trace = self._run(bandwidth=10_000.0)
        assert trace.total_wait_time() == 0.0

    def test_latencies_positive(self):
        _, trace = self._run()
        for latency in trace.dispatch_to_apply_latencies():
            assert latency >= 0.0

    def test_default_client_traceless(self):
        cfg = DistillConfig(min_stride=4, max_stride=16, max_updates=1)
        server = Server(StudentNet(width=0.25, seed=0), OracleTeacher(), cfg)
        client = Client(StudentNet(width=0.25, seed=0), server, cfg)
        assert isinstance(client.trace, NullTrace)
